#include "gpusim/calibration_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "gpusim/microbench.hpp"

namespace repro::gpusim {
namespace {

std::string temp_path() { return "/tmp/repro_calibration_test.txt"; }

TEST(CalibrationIo, RoundTripsExactly) {
  const model::ModelInputs in = calibrate_model(
      titan_x(), stencil::get_stencil(stencil::StencilKind::kGradient2D));
  save_calibration(temp_path(), in);
  const model::ModelInputs out = load_calibration(temp_path());
  EXPECT_EQ(out.hw.name, in.hw.name);
  EXPECT_EQ(out.hw.n_sm, in.hw.n_sm);
  EXPECT_EQ(out.hw.n_v, in.hw.n_v);
  EXPECT_EQ(out.hw.regs_per_sm, in.hw.regs_per_sm);
  EXPECT_EQ(out.hw.shared_words_per_sm, in.hw.shared_words_per_sm);
  EXPECT_EQ(out.hw.max_shared_words_per_block,
            in.hw.max_shared_words_per_block);
  EXPECT_EQ(out.hw.max_tb_per_sm, in.hw.max_tb_per_sm);
  // max_digits10 serialization => bit-exact doubles.
  EXPECT_EQ(out.mb.L_s_per_word, in.mb.L_s_per_word);
  EXPECT_EQ(out.mb.tau_sync, in.mb.tau_sync);
  EXPECT_EQ(out.mb.T_sync, in.mb.T_sync);
  EXPECT_EQ(out.c_iter, in.c_iter);
  EXPECT_EQ(out.radius, in.radius);
  std::remove(temp_path().c_str());
}

TEST(CalibrationIo, PreservesRadius2) {
  const model::ModelInputs in = calibrate_model(
      gtx980(), stencil::get_stencil(stencil::StencilKind::kWideStar2D));
  ASSERT_EQ(in.radius, 2);
  save_calibration(temp_path(), in);
  EXPECT_EQ(load_calibration(temp_path()).radius, 2);
  std::remove(temp_path().c_str());
}

TEST(CalibrationIo, MissingFileThrows) {
  EXPECT_THROW(load_calibration("/nonexistent/cal.txt"), std::runtime_error);
  EXPECT_THROW(save_calibration("/nonexistent-dir/cal.txt",
                                model::ModelInputs{}),
               std::runtime_error);
}

TEST(CalibrationIo, MissingKeyThrows) {
  {
    std::ofstream out(temp_path());
    out << "version 1\nhw.name X\n";
  }
  EXPECT_THROW(load_calibration(temp_path()), std::runtime_error);
  std::remove(temp_path().c_str());
}

TEST(CalibrationIo, VersionMismatchThrows) {
  const model::ModelInputs in = calibrate_model(
      gtx980(), stencil::get_stencil(stencil::StencilKind::kHeat2D));
  save_calibration(temp_path(), in);
  // Corrupt the version line.
  std::string contents;
  {
    std::ifstream f(temp_path());
    std::getline(f, contents);  // "version 1"
    std::string rest((std::istreambuf_iterator<char>(f)),
                     std::istreambuf_iterator<char>());
    std::ofstream out(temp_path());
    out << "version 999\n" << rest;
  }
  EXPECT_THROW(load_calibration(temp_path()), std::runtime_error);
  std::remove(temp_path().c_str());
}

TEST(CalibrationIo, MalformedLineThrows) {
  {
    std::ofstream out(temp_path());
    out << "version1\n";  // no space separator
  }
  EXPECT_THROW(load_calibration(temp_path()), std::runtime_error);
  std::remove(temp_path().c_str());
}

TEST(CalibrationIo, CommentsAndBlankLinesIgnored) {
  const model::ModelInputs in = calibrate_model(
      gtx980(), stencil::get_stencil(stencil::StencilKind::kHeat2D));
  save_calibration(temp_path(), in);
  {
    std::ifstream f(temp_path());
    std::string rest((std::istreambuf_iterator<char>(f)),
                     std::istreambuf_iterator<char>());
    std::ofstream out(temp_path());
    out << "# cached calibration\n\n" << rest;
  }
  EXPECT_NO_THROW(load_calibration(temp_path()));
  std::remove(temp_path().c_str());
}

// --- Structured error paths (the diagnostic-collecting form) ---------
// A corrupt calibration cache must produce SL41x diagnostics, never a
// crash and never a silently defaulted calibration.

TEST(CalibrationIoDiagnostics, UnopenableFileIsSL411) {
  analysis::DiagnosticEngine diags;
  EXPECT_EQ(load_calibration("/nonexistent/cal.txt", diags), std::nullopt);
  EXPECT_TRUE(diags.has_errors());
  EXPECT_TRUE(diags.has_code(analysis::Code::kCalibIo));
}

TEST(CalibrationIoDiagnostics, UnknownKeyIsSL414NotSilentlyIgnored) {
  const model::ModelInputs in = calibrate_model(
      gtx980(), stencil::get_stencil(stencil::StencilKind::kHeat2D));
  save_calibration(temp_path(), in);
  {
    std::ofstream out(temp_path(), std::ios::app);
    out << "hw.n_smm 16\n";  // typo'd key
  }
  analysis::DiagnosticEngine diags;
  EXPECT_EQ(load_calibration(temp_path(), diags), std::nullopt);
  EXPECT_TRUE(diags.has_code(analysis::Code::kCalibUnknownKey));
  std::remove(temp_path().c_str());
}

TEST(CalibrationIoDiagnostics, TruncatedFileReportsEveryMissingKey) {
  const model::ModelInputs in = calibrate_model(
      gtx980(), stencil::get_stencil(stencil::StencilKind::kHeat2D));
  save_calibration(temp_path(), in);
  {
    // Keep only the first three lines (version + two keys).
    std::ifstream f(temp_path());
    std::string head, line;
    for (int i = 0; i < 3 && std::getline(f, line); ++i) {
      head += line + "\n";
    }
    f.close();
    std::ofstream out(temp_path(), std::ios::trunc);
    out << head;
  }
  analysis::DiagnosticEngine diags;
  EXPECT_EQ(load_calibration(temp_path(), diags), std::nullopt);
  EXPECT_TRUE(diags.has_code(analysis::Code::kCalibMissingKey));
  // A truncated file is missing many keys; all are reported at once.
  EXPECT_GT(diags.count(analysis::Severity::kError), 1u);
  std::remove(temp_path().c_str());
}

TEST(CalibrationIoDiagnostics, UnparsableValueIsSL412WithLineNumber) {
  const model::ModelInputs in = calibrate_model(
      gtx980(), stencil::get_stencil(stencil::StencilKind::kHeat2D));
  save_calibration(temp_path(), in);
  std::string rest;
  {
    std::ifstream f(temp_path());
    std::string line;
    std::getline(f, line);  // drop "version 1"
    while (std::getline(f, line)) {
      if (line.rfind("hw.n_sm ", 0) == 0) continue;  // replaced below
      rest += line + "\n";
    }
  }
  {
    std::ofstream out(temp_path(), std::ios::trunc);
    out << "version 1\nhw.n_sm 16abc\n" << rest;
  }
  analysis::DiagnosticEngine diags;
  EXPECT_EQ(load_calibration(temp_path(), diags), std::nullopt);
  ASSERT_TRUE(diags.has_code(analysis::Code::kCalibMalformed));
  for (const analysis::Diagnostic& d : diags.diagnostics()) {
    if (d.code == analysis::Code::kCalibMalformed) {
      EXPECT_EQ(d.line, 2);  // 1-based: the corrupted line
    }
  }
  std::remove(temp_path().c_str());
}

TEST(CalibrationIoDiagnostics, VersionMismatchIsSL415) {
  {
    std::ofstream out(temp_path(), std::ios::trunc);
    out << "version 999\n";
  }
  analysis::DiagnosticEngine diags;
  EXPECT_EQ(load_calibration(temp_path(), diags), std::nullopt);
  EXPECT_TRUE(diags.has_code(analysis::Code::kCalibVersion));
  std::remove(temp_path().c_str());
}

TEST(CalibrationIoDiagnostics, ThrowingFormCarriesTheCode) {
  {
    std::ofstream out(temp_path(), std::ios::trunc);
    out << "version 999\n";
  }
  try {
    load_calibration(temp_path());
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("SL415"), std::string::npos);
  }
  std::remove(temp_path().c_str());
}

TEST(ParametricVariant, ScalesInstructionCostsAndKillsSpills) {
  const DeviceParams base = gtx980();
  const DeviceParams par = parametric_codegen_variant(base, 0.15);
  EXPECT_NE(par.name, base.name);
  EXPECT_NEAR(par.cost.fma, base.cost.fma * 1.15, 1e-12);
  EXPECT_NEAR(par.cost.addr, base.cost.addr * 1.15 * 1.5, 1e-12);
  EXPECT_EQ(par.spill_cycles_per_reg, 0.0);
  // Hardware resources are unchanged — it is the same chip.
  EXPECT_EQ(par.n_sm, base.n_sm);
  EXPECT_EQ(par.mem_bandwidth_bps, base.mem_bandwidth_bps);
}

}  // namespace
}  // namespace repro::gpusim
