// Model-side tests for the ghost-zone baseline: the analytic ghost
// prediction uses the same elementary parameters as the HHC model and
// must expose the scheme's redundancy trade-off.
#include <gtest/gtest.h>

#include "gpusim/microbench.hpp"
#include "overtile/ghost.hpp"

namespace repro::overtile {
namespace {

using stencil::get_stencil;
using stencil::ProblemSize;
using stencil::StencilKind;

model::ModelInputs inputs() {
  return gpusim::calibrate_model(gpusim::gtx980(),
                                 get_stencil(StencilKind::kHeat2D));
}

TEST(GhostModel, AutoKPicksTheBestFeasibleK) {
  const model::ModelInputs in = inputs();
  const ProblemSize p{.dim = 2, .S = {4096, 4096, 0}, .T = 1024};
  const GhostTileSizes ts{.tT = 2, .b = {16, 32, 1}};
  const model::TalgBreakdown best = ghost_talg(in, p, ts);
  EXPECT_GE(best.k, 1);
  // The chosen k must not be beatable by any smaller feasible k; a
  // brute-force check over the shared-memory bound.
  const std::int64_t m_words = ghost_shared_words(2, ts, in.radius);
  const std::int64_t k_hi = std::min<std::int64_t>(
      in.hw.max_tb_per_sm, in.hw.shared_words_per_sm / m_words);
  EXPECT_LE(best.k, k_hi);
}

TEST(GhostModel, InfeasibleTileThrows) {
  const model::ModelInputs in = inputs();
  const ProblemSize p{.dim = 2, .S = {1024, 1024, 0}, .T = 64};
  EXPECT_THROW(ghost_talg(in, p, {.tT = 32, .b = {64, 64, 1}}),
               std::invalid_argument);
}

TEST(GhostModel, PredictionScalesWithProblemTime) {
  const model::ModelInputs in = inputs();
  const GhostTileSizes ts{.tT = 4, .b = {16, 32, 1}};
  const ProblemSize p1{.dim = 2, .S = {2048, 2048, 0}, .T = 512};
  const ProblemSize p2{.dim = 2, .S = {2048, 2048, 0}, .T = 1024};
  const double t1 = ghost_talg(in, p1, ts).talg;
  const double t2 = ghost_talg(in, p2, ts).talg;
  EXPECT_NEAR(t2 / t1, 2.0, 0.05);
}

TEST(GhostModel, RedundancyShowsInComputeTerm) {
  // At equal core volume, deeper ghost tiles must carry a larger
  // compute term per superstep (the shrinking-plane sum grows).
  const model::ModelInputs in = inputs();
  const ProblemSize p{.dim = 2, .S = {2048, 2048, 0}, .T = 512};
  const double c2 =
      ghost_talg(in, p, {.tT = 2, .b = {16, 32, 1}}).c / 2.0;
  const double c8 =
      ghost_talg(in, p, {.tT = 8, .b = {16, 32, 1}}).c / 8.0;
  EXPECT_GT(c8, c2);  // per-time-step compute grows with depth
}

TEST(GhostModel, ModelIsOptimisticAgainstGhostSimulator) {
  const model::ModelInputs in = inputs();
  const auto& def = get_stencil(StencilKind::kHeat2D);
  const ProblemSize p{.dim = 2, .S = {4096, 4096, 0}, .T = 1024};
  for (const std::int64_t tT : {2LL, 4LL, 8LL}) {
    const GhostTileSizes ts{.tT = tT, .b = {16, 64, 1}};
    const double pred = ghost_talg(in, p, ts).talg;
    const auto sim = measure_ghost_best_of(gpusim::gtx980(), def, p, ts,
                                           {.n1 = 32, .n2 = 8, .n3 = 1});
    ASSERT_TRUE(sim.feasible);
    EXPECT_LT(pred, sim.seconds * 1.15) << "tT=" << tT;
  }
}

}  // namespace
}  // namespace repro::overtile
