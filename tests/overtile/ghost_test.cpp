#include "overtile/ghost.hpp"

#include <gtest/gtest.h>

#include "gpusim/microbench.hpp"
#include "stencil/reference.hpp"

namespace repro::overtile {
namespace {

using stencil::Grid;
using stencil::ProblemSize;
using stencil::StencilKind;

struct GhostCase {
  StencilKind kind;
  ProblemSize p;
  GhostTileSizes ts;
};

class GhostMatchesReference : public ::testing::TestWithParam<GhostCase> {};

TEST_P(GhostMatchesReference, BitIdenticalResult) {
  const auto& [kind, p, ts] = GetParam();
  const stencil::StencilDef& def = stencil::get_stencil(kind);
  const Grid<float> init = stencil::make_initial_grid(p, 0xBEEF);
  const Grid<float> expect = stencil::run_reference(def, p, init);
  GhostStats stats;
  const Grid<float> got = run_ghost(def, p, ts, init, &stats);
  EXPECT_EQ(stencil::max_abs_diff(expect, got), 0.0)
      << def.name << " " << p.to_string() << " " << ts.to_string();
  EXPECT_GE(stats.computed_points, p.total_points());
}

INSTANTIATE_TEST_SUITE_P(
    Stencils, GhostMatchesReference,
    ::testing::Values(
        GhostCase{StencilKind::kJacobi1D, {1, {40, 0, 0}, 11},
                  {.tT = 3, .b = {8, 1, 1}}},
        GhostCase{StencilKind::kJacobi2D, {2, {20, 17, 0}, 7},
                  {.tT = 2, .b = {6, 5, 1}}},
        GhostCase{StencilKind::kHeat2D, {2, {16, 16, 0}, 9},
                  {.tT = 4, .b = {8, 8, 1}}},
        GhostCase{StencilKind::kGradient2D, {2, {14, 14, 0}, 5},
                  {.tT = 1, .b = {4, 4, 1}}},
        GhostCase{StencilKind::kHeat3D, {3, {9, 8, 7}, 5},
                  {.tT = 2, .b = {4, 4, 4}}},
        // Radius-2 stencil through the ghost path.
        GhostCase{StencilKind::kWideStar2D, {2, {15, 13, 0}, 6},
                  {.tT = 2, .b = {5, 6, 1}}},
        // Tile bigger than the domain: one block, no redundancy.
        GhostCase{StencilKind::kJacobi2D, {2, {8, 8, 0}, 4},
                  {.tT = 4, .b = {32, 32, 1}}}),
    [](const ::testing::TestParamInfo<GhostCase>& info) {
      return std::string(stencil::to_string(info.param.kind)) + "_" +
             std::to_string(info.index);
    });

TEST(Ghost, RedundancyGrowsWithTimeDepth) {
  const auto& def = stencil::get_stencil(StencilKind::kHeat2D);
  const ProblemSize p{.dim = 2, .S = {32, 32, 0}, .T = 8};
  const auto init = stencil::make_initial_grid(p, 1);
  double prev = 1.0;
  for (const std::int64_t tT : {1, 2, 4, 8}) {
    GhostStats stats;
    (void)run_ghost(def, p, {.tT = tT, .b = {8, 8, 1}}, init, &stats);
    EXPECT_GE(stats.redundancy(), prev);
    prev = stats.redundancy();
  }
  EXPECT_GT(prev, 1.5);  // deep time tiles recompute a lot
}

TEST(Ghost, SingleBlockHasNoRedundancy) {
  const auto& def = stencil::get_stencil(StencilKind::kHeat2D);
  const ProblemSize p{.dim = 2, .S = {16, 16, 0}, .T = 4};
  GhostStats stats;
  (void)run_ghost(def, p, {.tT = 4, .b = {64, 64, 1}},
                  stencil::make_initial_grid(p, 1), &stats);
  // A single tile covering the domain computes each point once (the
  // halo lies outside the domain and is skipped).
  EXPECT_EQ(stats.computed_points, p.total_points());
  EXPECT_EQ(stats.thread_blocks, 1);
}

TEST(Ghost, BlockComputeAccountingMatchesExecutor) {
  // ghost_block_compute_points must equal the interior blocks' actual
  // computed points per superstep.
  const auto& def = stencil::get_stencil(StencilKind::kJacobi2D);
  const GhostTileSizes ts{.tT = 3, .b = {4, 4, 1}};
  // Domain so large relative to the halo that every block's extended
  // box stays inside: use one superstep and count.
  const ProblemSize p{.dim = 2, .S = {4 * 10, 4 * 10, 0}, .T = 3};
  GhostStats stats;
  (void)run_ghost(def, p, ts, stencil::make_initial_grid(p, 2), &stats);
  // Interior blocks dominate; total computed must be bounded by
  // blocks * per-block formula and at least the core work.
  const std::int64_t per_block = ghost_block_compute_points(2, ts, 1);
  EXPECT_LE(stats.computed_points, stats.thread_blocks * per_block);
  EXPECT_GE(stats.computed_points, p.total_points());
}

TEST(Ghost, SharedWordsFormula) {
  const GhostTileSizes ts{.tT = 2, .b = {8, 16, 1}};
  EXPECT_EQ(ghost_shared_words(2, ts, 1), 2 * (8 + 4) * (16 + 4));
  EXPECT_EQ(ghost_shared_words(1, ts, 2), 2 * (8 + 8));
}

TEST(Ghost, ValidateRejectsBadSizes) {
  EXPECT_THROW(validate({.tT = 0, .b = {4, 4, 1}}, 2),
               std::invalid_argument);
  EXPECT_THROW(validate({.tT = 2, .b = {0, 4, 1}}, 2),
               std::invalid_argument);
  EXPECT_NO_THROW(validate({.tT = 2, .b = {4, 4, 1}}, 2));
}

TEST(Ghost, ModelAndSimulatorProducePositiveTimes) {
  const auto& def = stencil::get_stencil(StencilKind::kHeat2D);
  const ProblemSize p{.dim = 2, .S = {2048, 2048, 0}, .T = 512};
  const model::ModelInputs in = gpusim::calibrate_model(gpusim::gtx980(), def);
  const GhostTileSizes ts{.tT = 2, .b = {16, 32, 1}};
  ASSERT_TRUE(ghost_tile_fits(2, ts, in.hw, 1));
  const model::TalgBreakdown b = ghost_talg(in, p, ts);
  EXPECT_GT(b.talg, 0.0);
  EXPECT_GE(b.k, 1);

  const auto sim = measure_ghost_best_of(gpusim::gtx980(), def, p, ts,
                                         {.n1 = 32, .n2 = 8, .n3 = 1});
  ASSERT_TRUE(sim.feasible) << sim.infeasible_reason;
  EXPECT_GT(sim.seconds, 0.0);
  // The ghost model is optimistic in the same sense as the HHC model.
  EXPECT_LT(b.talg, sim.seconds * 1.2);
}

TEST(Ghost, TimeDepthHasTheClassicCrossover) {
  // The ghost-zone scheme's defining trade-off: shallow time tiles
  // are memory-bound (the whole grid streams every couple of steps),
  // deeper tiles amortize traffic until redundant recomputation
  // dominates — a U-shaped cost in tT.
  const auto& def = stencil::get_stencil(StencilKind::kHeat2D);
  const ProblemSize p{.dim = 2, .S = {2048, 2048, 0}, .T = 512};
  const hhc::ThreadConfig thr{.n1 = 32, .n2 = 8, .n3 = 1};
  const auto t2 = measure_ghost_best_of(gpusim::gtx980(), def, p,
                                        {.tT = 2, .b = {16, 32, 1}}, thr);
  const auto t8 = measure_ghost_best_of(gpusim::gtx980(), def, p,
                                        {.tT = 8, .b = {16, 32, 1}}, thr);
  const auto t16 = measure_ghost_best_of(gpusim::gtx980(), def, p,
                                         {.tT = 16, .b = {16, 32, 1}}, thr);
  ASSERT_TRUE(t2.feasible);
  ASSERT_TRUE(t8.feasible);
  ASSERT_TRUE(t16.feasible);
  EXPECT_GT(t2.seconds, t8.seconds) << "shallow side should be memory-bound";
  EXPECT_GT(t16.seconds, t8.seconds) << "deep side should pay redundancy";
}

TEST(Ghost, InfeasibleWhenHaloOverflowsSharedMemory) {
  const auto& def = stencil::get_stencil(StencilKind::kHeat2D);
  const ProblemSize p{.dim = 2, .S = {1024, 1024, 0}, .T = 64};
  const auto sim = simulate_ghost_time(gpusim::gtx980(), def, p,
                                       {.tT = 32, .b = {64, 64, 1}},
                                       {.n1 = 32, .n2 = 8, .n3 = 1});
  EXPECT_FALSE(sim.feasible);
}

}  // namespace
}  // namespace repro::overtile
