// Property tests for the cache-hierarchy CPU backend (src/cpusim):
// the sweep-geometry invariants the timing model is derived from, the
// admissible lower bound (lower_bound <= simulate_time <= best-of-N
// for every run_id), the model-optimism inequality the bench asserts
// in bulk (talg <= texec pointwise), the working-set cliff, and the
// microbench calibration identities (tau_sync == step_fence_s,
// T_sync == parallel_launch_s, C_iter > 0).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "cpusim/device.hpp"
#include "cpusim/lower_bound.hpp"
#include "cpusim/microbench.hpp"
#include "cpusim/timing.hpp"
#include "model/talg.hpp"
#include "stencil/stencil.hpp"

namespace repro::cpusim {
namespace {

using stencil::get_stencil;
using stencil::ProblemSize;
using stencil::StencilDef;
using stencil::StencilKind;

struct CpuCase {
  std::string name;
  StencilKind kind;
  ProblemSize p;
  hhc::TileSizes ts;
  hhc::ThreadConfig thr;
};

// Coverage set mirroring the gpusim bound suite: every dimension,
// boundary clipping, radius 2, under-threaded (1 strand), SMT sweet
// spot and over-subscribed strand counts, and a tile too big for any
// cache level (the working-set cliff).
std::vector<CpuCase> cpu_cases() {
  return {
      {"1d_interior", StencilKind::kJacobi1D,
       {.dim = 1, .S = {65536, 0, 0}, .T = 256},
       {.tT = 8, .tS1 = 512, .tS2 = 1, .tS3 = 1},
       {.n1 = 2, .n2 = 1, .n3 = 1}},
      {"1d_radius2", StencilKind::kGauss1D,
       {.dim = 1, .S = {8192, 0, 0}, .T = 128},
       {.tT = 4, .tS1 = 256, .tS2 = 1, .tS3 = 1},
       {.n1 = 1, .n2 = 1, .n3 = 1}},
      {"2d_interior", StencilKind::kHeat2D,
       {.dim = 2, .S = {1024, 1024, 0}, .T = 128},
       {.tT = 8, .tS1 = 16, .tS2 = 128, .tS3 = 1},
       {.n1 = 2, .n2 = 1, .n3 = 1}},
      {"2d_clipped", StencilKind::kGradient2D,
       {.dim = 2, .S = {1000, 1000, 0}, .T = 100},
       {.tT = 12, .tS1 = 24, .tS2 = 56, .tS3 = 1},
       {.n1 = 4, .n2 = 1, .n3 = 1}},
      {"2d_radius2", StencilKind::kWideStar2D,
       {.dim = 2, .S = {512, 512, 0}, .T = 64},
       {.tT = 4, .tS1 = 16, .tS2 = 32, .tS3 = 1},
       {.n1 = 2, .n2 = 1, .n3 = 1}},
      {"2d_oversubscribed", StencilKind::kJacobi2D,
       {.dim = 2, .S = {2048, 2048, 0}, .T = 64},
       {.tT = 2, .tS1 = 10, .tS2 = 250, .tS3 = 1},
       {.n1 = 48, .n2 = 1, .n3 = 1}},
      {"2d_cliff", StencilKind::kHeat2D,
       {.dim = 2, .S = {4096, 4096, 0}, .T = 32},
       {.tT = 16, .tS1 = 64, .tS2 = 4096, .tS3 = 1},
       {.n1 = 2, .n2 = 1, .n3 = 1}},
      {"3d_interior", StencilKind::kHeat3D,
       {.dim = 3, .S = {256, 256, 256}, .T = 32},
       {.tT = 4, .tS1 = 8, .tS2 = 32, .tS3 = 32},
       {.n1 = 2, .n2 = 1, .n3 = 1}},
      {"3d_clipped", StencilKind::kJacobi3D,
       {.dim = 3, .S = {100, 100, 100}, .T = 30},
       {.tT = 4, .tS1 = 12, .tS2 = 24, .tS3 = 24},
       {.n1 = 2, .n2 = 1, .n3 = 1}},
  };
}

std::vector<const CpuParams*> cpu_devices() {
  return {&xeon_e5_2690v4(), &ryzen_3700x()};
}

TEST(SweepGeometry, ModelDecompositionInvariants) {
  for (const CpuParams* dev : cpu_devices()) {
    for (const CpuCase& c : cpu_cases()) {
      const StencilDef& def = get_stencil(c.kind);
      const SweepGeometry g = analyze_sweep(*dev, def, c.p, c.ts, c.thr);
      ASSERT_TRUE(g.feasible) << dev->name << " " << c.name << ": "
                              << g.infeasible_reason;
      // The schedule shape the model assumes at k = 1.
      EXPECT_EQ(g.rounds, (g.w + dev->cores - 1) / dev->cores)
          << dev->name << " " << c.name;
      EXPECT_EQ(g.active_cores,
                static_cast<int>(std::min<std::int64_t>(dev->cores, g.w)))
          << dev->name << " " << c.name;
      EXPECT_EQ(g.tasks_row, g.w * g.n_sub) << dev->name << " " << c.name;
      EXPECT_EQ(g.wavefronts % 2, 0) << dev->name << " " << c.name;
      // Family averages can only sit at or above the narrow family...
      EXPECT_GE(g.volume_avg, static_cast<double>(g.volume))
          << dev->name << " " << c.name;
      EXPECT_GE(g.io_words_avg, static_cast<double>(g.io_words))
          << dev->name << " " << c.name;
      // ...and the chunk/remainder ceilings only add over the pure
      // SIMD-width floor the model keeps.
      EXPECT_GE(g.groups_avg * static_cast<double>(dev->vector_words),
                g.volume_avg)
          << dev->name << " " << c.name;
      EXPECT_GE(g.line_waste, 1.0) << dev->name << " " << c.name;
      EXPECT_GT(g.cyc_group, 0.0) << dev->name << " " << c.name;
    }
  }
}

void expect_admissible(const CpuParams& dev, const StencilDef& def,
                       const ProblemSize& p, const hhc::TileSizes& ts,
                       const hhc::ThreadConfig& thr, const std::string& tag) {
  const LowerBound lb = lower_bound(dev, def, p, ts, thr);
  const SimResult sim0 = simulate_time(dev, def, p, ts, thr, /*run_id=*/0);
  ASSERT_EQ(lb.feasible, sim0.feasible) << tag;
  if (!lb.feasible) {
    EXPECT_TRUE(std::isinf(lb.seconds)) << tag;
    return;
  }
  EXPECT_GT(lb.seconds, 0.0) << tag;
  // A floor for every run_id (the jitter factor never drops below 1)...
  for (const std::uint64_t run : {0ULL, 1ULL, 7ULL, 123ULL}) {
    const SimResult sim = simulate_time(dev, def, p, ts, thr, run);
    ASSERT_TRUE(sim.feasible) << tag;
    EXPECT_LE(lb.seconds, sim.seconds) << tag << " run " << run;
  }
  // ...and therefore of the best-of-5 protocol the tuner measures.
  const SimResult best = measure_best_of(dev, def, p, ts, thr);
  EXPECT_LE(lb.seconds, best.seconds) << tag;
  // The decomposition sums to the floor and each part is a floor.
  EXPECT_NEAR(lb.seconds,
              lb.compute_floor + lb.memory_floor + lb.overhead_floor,
              1e-15 + 1e-12 * lb.seconds)
      << tag;
  EXPECT_GT(lb.overhead_floor, 0.0) << tag;  // fences are never free
}

TEST(LowerBound, AdmissibleAcrossCaseTable) {
  for (const CpuParams* dev : cpu_devices()) {
    for (const CpuCase& c : cpu_cases()) {
      expect_admissible(*dev, get_stencil(c.kind), c.p, c.ts, c.thr,
                        dev->name + " " + c.name);
    }
  }
}

TEST(LowerBound, AdmissibleOnSeededRandomFeasibleSample) {
  const struct {
    StencilKind kind;
    ProblemSize p;
  } spaces[] = {
      {StencilKind::kJacobi1D, {.dim = 1, .S = {16384, 0, 0}, .T = 128}},
      {StencilKind::kHeat2D, {.dim = 2, .S = {512, 512, 0}, .T = 64}},
      {StencilKind::kHeat3D, {.dim = 3, .S = {96, 96, 96}, .T = 16}},
  };
  Rng rng(2026);
  int feasible_seen = 0;
  for (const auto& sp : spaces) {
    const StencilDef& def = get_stencil(sp.kind);
    for (int draw = 0; draw < 40; ++draw) {
      hhc::TileSizes ts;
      ts.tT = 2 * rng.uniform_int(1, 8);
      ts.tS1 = rng.uniform_int(2, 512);
      ts.tS2 = sp.p.dim >= 2 ? 8 * rng.uniform_int(1, 32) : 1;
      ts.tS3 = sp.p.dim >= 3 ? 8 * rng.uniform_int(1, 8) : 1;
      hhc::ThreadConfig thr;
      thr.n1 = static_cast<int>(rng.uniform_int(1, 48));
      const LowerBound lb = lower_bound(xeon_e5_2690v4(), def, sp.p, ts, thr);
      const SimResult sim = simulate_time(xeon_e5_2690v4(), def, sp.p, ts, thr);
      ASSERT_EQ(lb.feasible, sim.feasible) << sp.p.dim << "D draw " << draw;
      if (!sim.feasible) continue;
      ++feasible_seen;
      EXPECT_LE(lb.seconds, sim.seconds) << sp.p.dim << "D draw " << draw;
      const SimResult best =
          measure_best_of(xeon_e5_2690v4(), def, sp.p, ts, thr);
      EXPECT_LE(lb.seconds, best.seconds) << sp.p.dim << "D draw " << draw;
    }
  }
  EXPECT_GE(feasible_seen, 20);
}

TEST(Simulator, DeterministicAndBestOfIsEnvelope) {
  const StencilDef& def = get_stencil(StencilKind::kHeat2D);
  const ProblemSize p{.dim = 2, .S = {1024, 1024, 0}, .T = 128};
  const hhc::TileSizes ts{.tT = 8, .tS1 = 16, .tS2 = 128, .tS3 = 1};
  const hhc::ThreadConfig thr{.n1 = 2, .n2 = 1, .n3 = 1};
  const CpuParams& dev = xeon_e5_2690v4();

  const SimResult a = simulate_time(dev, def, p, ts, thr, 3);
  const SimResult b = simulate_time(dev, def, p, ts, thr, 3);
  EXPECT_EQ(a.seconds, b.seconds);
  EXPECT_EQ(a.gflops, b.gflops);

  const SimResult best = measure_best_of(dev, def, p, ts, thr, 5);
  for (std::uint64_t run = 0; run < 5; ++run) {
    const SimResult sim = simulate_time(dev, def, p, ts, thr, run);
    EXPECT_LE(best.seconds, sim.seconds) << "run " << run;
    // Jitter is bounded: within amplitude of the best-of envelope.
    EXPECT_LE(sim.seconds, best.seconds * (1.0 + dev.jitter_amplitude))
        << "run " << run;
  }
}

TEST(Simulator, InfeasibleConfigurationsAreDiagnosed) {
  const StencilDef& def = get_stencil(StencilKind::kHeat2D);
  const ProblemSize p{.dim = 2, .S = {512, 512, 0}, .T = 64};
  const hhc::ThreadConfig thr{.n1 = 2, .n2 = 1, .n3 = 1};
  const CpuParams& dev = xeon_e5_2690v4();

  // Odd tT: the hexagonal geometry itself is invalid.
  const SimResult odd = simulate_time(
      dev, def, p, {.tT = 7, .tS1 = 16, .tS2 = 64, .tS3 = 1}, thr);
  EXPECT_FALSE(odd.feasible);
  EXPECT_FALSE(odd.infeasible_reason.empty());
  // tS1 below the dependence slope of a radius-2 stencil.
  const StencilDef& wide = get_stencil(StencilKind::kWideStar2D);
  const SimResult slope = simulate_time(
      dev, wide, p, {.tT = 4, .tS1 = 1, .tS2 = 64, .tS3 = 1}, thr);
  EXPECT_FALSE(slope.feasible);
  // Strand count out of range.
  const hhc::TileSizes ts{.tT = 8, .tS1 = 16, .tS2 = 64, .tS3 = 1};
  EXPECT_FALSE(
      simulate_time(dev, def, p, ts, {.n1 = 0, .n2 = 1, .n3 = 1}).feasible);
  EXPECT_FALSE(
      simulate_time(dev, def, p, ts, {.n1 = 2048, .n2 = 1, .n3 = 1}).feasible);
  // The lower bound agrees and reports +infinity.
  const LowerBound lb = lower_bound(
      dev, def, p, {.tT = 7, .tS1 = 16, .tS2 = 64, .tS3 = 1}, thr);
  EXPECT_FALSE(lb.feasible);
  EXPECT_TRUE(std::isinf(lb.seconds));
}

TEST(WorkingSet, FootprintMonotoneAndFitLevelMovesOutward) {
  const StencilDef& def = get_stencil(StencilKind::kHeat2D);
  const ProblemSize p{.dim = 2, .S = {4096, 4096, 0}, .T = 64};
  const hhc::ThreadConfig thr{.n1 = 2, .n2 = 1, .n3 = 1};
  const CpuParams& dev = xeon_e5_2690v4();

  std::int64_t prev_footprint = 0;
  std::size_t prev_rank = 0;
  bool saw_dram = false;
  for (std::int64_t tS2 = 32; tS2 <= 16384; tS2 *= 2) {
    const hhc::TileSizes ts{.tT = 8, .tS1 = 16, .tS2 = tS2, .tS3 = 1};
    const SweepGeometry g = analyze_sweep(dev, def, p, ts, thr);
    ASSERT_TRUE(g.feasible) << "tS2=" << tS2;
    EXPECT_GT(g.footprint_bytes, prev_footprint) << "tS2=" << tS2;
    prev_footprint = g.footprint_bytes;
    // fit_level indexes L1 -> LLC; -1 (DRAM) ranks past every level.
    const std::size_t rank = g.fit_level < 0 ? dev.levels.size()
                                             : static_cast<std::size_t>(
                                                   g.fit_level);
    EXPECT_GE(rank, prev_rank) << "tS2=" << tS2;
    prev_rank = rank;
    saw_dram = saw_dram || g.fit_level < 0;
  }
  EXPECT_TRUE(saw_dram);  // the sweep must actually reach the cliff

  // Falling off the last cache level costs: the per-step DRAM
  // re-stream makes the per-point time jump.
  const hhc::TileSizes fits{.tT = 8, .tS1 = 16, .tS2 = 64, .tS3 = 1};
  const hhc::TileSizes spills{.tT = 8, .tS1 = 16, .tS2 = 16384, .tS3 = 1};
  const SweepGeometry gf = analyze_sweep(dev, def, p, fits, thr);
  const SweepGeometry gs = analyze_sweep(dev, def, p, spills, thr);
  ASSERT_GE(gf.fit_level, 0);
  ASSERT_EQ(gs.fit_level, -1);
  const SimResult sf = simulate_time(dev, def, p, fits, thr, 0);
  const SimResult ss = simulate_time(dev, def, p, spills, thr, 0);
  ASSERT_TRUE(sf.feasible);
  ASSERT_TRUE(ss.feasible);
  EXPECT_GT(ss.service_seconds, 0.0);
  // Both tiles sweep the same problem, so whole-sweep seconds compare
  // directly — the restream makes the spilling tile strictly slower.
  EXPECT_GT(ss.seconds, sf.seconds);
}

TEST(Microbench, CalibrationMatchesDescriptorScalars) {
  for (const CpuParams* dev : cpu_devices()) {
    const StencilDef& def = get_stencil(StencilKind::kHeat2D);
    const model::ModelInputs in = calibrate_model(*dev, def);
    // The fence and launch storms recover the descriptor scalars
    // exactly — these are the 2*tau and T_sync the model charges.
    EXPECT_DOUBLE_EQ(in.mb.tau_sync, dev->step_fence_s) << dev->name;
    EXPECT_DOUBLE_EQ(in.mb.T_sync, dev->parallel_launch_s) << dev->name;
    EXPECT_GT(in.mb.L_s_per_word, 0.0) << dev->name;
    EXPECT_GT(in.c_iter, 0.0) << dev->name;
    // Model-visible machine shape: cores and SIMD lanes.
    EXPECT_EQ(in.hw.n_sm, dev->cores) << dev->name;
    EXPECT_EQ(in.hw.n_v, dev->vector_words) << dev->name;
    // One tile per core at a time: Eqn 12's k-overlap never applies.
    EXPECT_EQ(in.hw.max_tb_per_sm, 1) << dev->name;
  }
}

TEST(Model, OptimisticPointwiseOnLatticeSample) {
  // The bench asserts optimistic_fraction == 1.0 over full sweeps;
  // this pins the same inequality on a small lattice per stencil so a
  // regression fails in the tier-1 suite, not only in CI's bench job.
  const ProblemSize p{.dim = 2, .S = {1024, 1024, 0}, .T = 128};
  const double eps = 1e-12;
  for (const CpuParams* dev : cpu_devices()) {
    for (const StencilKind kind :
         {StencilKind::kHeat2D, StencilKind::kGradient2D}) {
      const StencilDef& def = get_stencil(kind);
      const model::ModelInputs in = calibrate_model(*dev, def);
      int checked = 0;
      for (const std::int64_t tT : {2, 4, 8, 16}) {
        for (const std::int64_t tS1 : {8, 16, 32}) {
          for (const std::int64_t tS2 : {64, 128, 256}) {
            const hhc::TileSizes ts{
                .tT = tT, .tS1 = tS1, .tS2 = tS2, .tS3 = 1};
            if (!model::tile_fits(p.dim, ts, in.hw, def.radius)) continue;
            const model::TalgBreakdown bd = model::talg_auto_k(in, p, ts);
            if (!std::isfinite(bd.talg) || bd.talg <= 0.0) continue;
            // Any strand count: the best-over-threads texec the bench
            // measures is itself a min over these.
            for (const int strands : {1, 2, 8}) {
              const SimResult sim = measure_best_of(
                  *dev, def, p, ts, {.n1 = strands, .n2 = 1, .n3 = 1});
              if (!sim.feasible) continue;
              ++checked;
              EXPECT_GE(sim.seconds + eps, bd.talg)
                  << dev->name << " " << def.name << " tT=" << tT
                  << " tS1=" << tS1 << " tS2=" << tS2
                  << " strands=" << strands;
            }
          }
        }
      }
      EXPECT_GE(checked, 50) << dev->name;
    }
  }
}

}  // namespace
}  // namespace repro::cpusim
