// tuner::Session driven by a CPU descriptor end-to-end: calibration
// routes through cpusim's microbenchmarks, measurement through the
// cache-hierarchy simulator, pruning through the cpusim admissible
// bound — all behind the same Session API the GPU backend uses.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "cpusim/device.hpp"
#include "device/registry.hpp"
#include "tuner/session.hpp"
#include "tuner/space.hpp"

namespace repro::tuner {
namespace {

const device::Descriptor& xeon() {
  const device::Descriptor* d = device::registry().find("Xeon E5-2690 v4");
  EXPECT_NE(d, nullptr);
  return *d;
}

stencil::ProblemSize small_2d() {
  return {.dim = 2, .S = {1024, 1024, 0}, .T = 128};
}

TEST(SessionCpu, DeviceThreadConfigsAreFlatStrandCounts) {
  const auto cpu = device_thread_configs(xeon(), 2);
  ASSERT_EQ(cpu.size(), 10u);
  for (const hhc::ThreadConfig& thr : cpu) {
    EXPECT_GE(thr.n1, 1);
    EXPECT_EQ(thr.n2, 1);  // strands are flat: no 2D/3D block shapes
    EXPECT_EQ(thr.n3, 1);
  }
  // GPU descriptors keep the historical block shapes byte-for-byte.
  const device::Descriptor* gpu = device::registry().find("GTX 980");
  ASSERT_NE(gpu, nullptr);
  EXPECT_EQ(device_thread_configs(*gpu, 2), default_thread_configs(2));
}

TEST(SessionCpu, CalibrationRoutesThroughCpusim) {
  const stencil::StencilDef& def = stencil::get_stencil_by_name("Heat2D");
  const TuningContext ctx = TuningContext::calibrate(xeon(), def, small_2d());
  const cpusim::CpuParams& dev = cpusim::xeon_e5_2690v4();
  EXPECT_DOUBLE_EQ(ctx.inputs.mb.tau_sync, dev.step_fence_s);
  EXPECT_DOUBLE_EQ(ctx.inputs.mb.T_sync, dev.parallel_launch_s);
  EXPECT_GT(ctx.inputs.c_iter, 0.0);
  EXPECT_EQ(ctx.inputs.hw.n_sm, dev.cores);
  EXPECT_EQ(ctx.inputs.hw.n_v, dev.vector_words);
  EXPECT_EQ(ctx.inputs.hw.max_tb_per_sm, 1);
}

TEST(SessionCpu, BestOverThreadsIsFeasibleAndOptimistic) {
  const stencil::StencilDef& def = stencil::get_stencil_by_name("Heat2D");
  Session session(xeon(), def, small_2d(), SessionOptions{}.with_jobs(2));
  const hhc::TileSizes ts{.tT = 8, .tS1 = 16, .tS2 = 128, .tS3 = 1};
  const EvaluatedPoint best = session.best_over_threads(ts);
  ASSERT_TRUE(best.feasible);
  EXPECT_GT(best.gflops, 0.0);
  // The model stays optimistic at the measured operating point.
  EXPECT_GE(best.texec + 1e-12, best.talg);
  // The winner is one of the CPU strand counts.
  const auto threads = device_thread_configs(xeon(), 2);
  EXPECT_NE(std::find(threads.begin(), threads.end(), best.dp.thr),
            threads.end());
}

TEST(SessionCpu, MemoizationServesRepeatedPoints) {
  const stencil::StencilDef& def = stencil::get_stencil_by_name("Heat2D");
  Session session(xeon(), def, small_2d(), SessionOptions{}.with_jobs(1));
  const DataPoint dp{.ts = {.tT = 8, .tS1 = 16, .tS2 = 128, .tS3 = 1},
                     .thr = {.n1 = 2, .n2 = 1, .n3 = 1}};
  const EvaluatedPoint a = session.evaluate_point(dp);
  const std::size_t hits_before = session.stats().cache_hits;
  const EvaluatedPoint b = session.evaluate_point(dp);
  EXPECT_EQ(a, b);
  EXPECT_GT(session.stats().cache_hits, hits_before);
  EXPECT_GE(session.cache_size(), 1u);
}

TEST(SessionCpu, PruningPreservesTheWinner) {
  const stencil::StencilDef& def = stencil::get_stencil_by_name("Heat2D");
  const TuningContext ctx = TuningContext::calibrate(xeon(), def, small_2d());
  const EnumOptions eopt = EnumOptions{}
                               .with_tT_max(8)
                               .with_tS1_max(32)
                               .with_tS1_step(8)
                               .with_tS2_max(128);
  const std::vector<hhc::TileSizes> space =
      enumerate_feasible(2, ctx.inputs.hw, eopt, def.radius);
  ASSERT_FALSE(space.empty());

  Session pruned(ctx, SessionOptions{}.with_jobs(2).with_prune(true));
  Session exact(ctx, SessionOptions{}.with_jobs(2).with_prune(false));
  const auto with_prune = pruned.best_over_threads_many(space);
  const auto without = exact.best_over_threads_many(space);
  ASSERT_EQ(with_prune.size(), without.size());

  const auto argmin = [](const std::vector<EvaluatedPoint>& pts) {
    const EvaluatedPoint* best = nullptr;
    for (const EvaluatedPoint& ep : pts) {
      if (!ep.feasible) continue;
      if (best == nullptr || ep.texec < best->texec) best = &ep;
    }
    return best;
  };
  const EvaluatedPoint* a = argmin(with_prune);
  const EvaluatedPoint* b = argmin(without);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  // The pruned winner is bitwise the unpruned winner.
  EXPECT_EQ(*a, *b);
}

TEST(SessionCpu, CompareStrategiesPrunedEqualsUnpruned) {
  const stencil::StencilDef& def = stencil::get_stencil_by_name("Heat2D");
  const TuningContext ctx = TuningContext::calibrate(xeon(), def, small_2d());
  CompareOptions copt;
  copt.enumeration = EnumOptions{}
                         .with_tT_max(8)
                         .with_tS1_max(32)
                         .with_tS1_step(8)
                         .with_tS2_max(128);
  copt.exhaustive_cap = 80;
  copt.baseline_count = 20;

  Session pruned(ctx, SessionOptions{}.with_jobs(2).with_prune(true));
  Session exact(ctx, SessionOptions{}.with_jobs(2).with_prune(false));
  const StrategyComparison a = pruned.compare_strategies(copt);
  const StrategyComparison b = exact.compare_strategies(copt);
  EXPECT_EQ(a, b);

  ASSERT_TRUE(a.exhaustive.feasible);
  ASSERT_TRUE(a.talg_min.feasible);
  // The exhaustive pass is the floor of every strategy.
  EXPECT_LE(a.exhaustive.texec, a.talg_min.texec + 1e-12);
  EXPECT_LE(a.exhaustive.texec, a.within10_best.texec + 1e-12);
  EXPECT_GE(a.candidates_tried, 1u);
  EXPECT_EQ(a.device, "Xeon E5-2690 v4");
}

TEST(SessionCpu, AuditAcceptsShippedCpuDescriptors) {
  const stencil::StencilDef& def = stencil::get_stencil_by_name("Heat2D");
  for (const char* name : {"Xeon E5-2690 v4", "Ryzen 7 3700X"}) {
    const device::Descriptor* d = device::registry().find(name);
    ASSERT_NE(d, nullptr) << name;
    Session session(*d, def, small_2d(), SessionOptions{}.with_jobs(1));
    const auto diags = session.audit(
        hhc::TileSizes{.tT = 8, .tS1 = 16, .tS2 = 128, .tS3 = 1},
        hhc::ThreadConfig{.n1 = 2, .n2 = 1, .n3 = 1});
    for (const analysis::Diagnostic& diag : diags) {
      EXPECT_NE(diag.severity, analysis::Severity::kError)
          << name << ": " << diag.message;
    }
  }
}

}  // namespace
}  // namespace repro::tuner
