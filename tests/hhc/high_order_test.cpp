// Higher-order (radius-2) stencil support: the Section 7 "Generality"
// extension. The hexagon slopes, skewed-band slopes, footprints and
// model terms all scale with the dependence radius; these tests prove
// the generalized geometry has the same exactness properties as the
// radius-1 case and that the tiled executor stays bit-identical to the
// reference for radius-2 stencils.
#include <gtest/gtest.h>

#include <vector>

#include "gpusim/microbench.hpp"
#include "gpusim/timing.hpp"
#include "hhc/bands.hpp"
#include "hhc/footprint.hpp"
#include "hhc/hex_schedule.hpp"
#include "hhc/tiled_executor.hpp"
#include "model/talg.hpp"
#include "stencil/reference.hpp"

namespace repro::hhc {
namespace {

struct R2Param {
  std::int64_t T;
  std::int64_t S;
  std::int64_t tT;
  std::int64_t tS1;
};

class Radius2Coverage : public ::testing::TestWithParam<R2Param> {};

TEST_P(Radius2Coverage, ExactCoverAndLegality) {
  const auto [T, S, tT, tS1] = GetParam();
  const std::int64_t radius = 2;
  const HexSchedule sched(T, S, tT, tS1, radius);

  std::vector<std::int64_t> order(static_cast<std::size_t>(T * S), -1);
  std::int64_t clock = 0;
  for (std::int64_t r = 0; r < sched.num_rows(); ++r) {
    for (std::int64_t q = sched.q_begin(r); q < sched.q_end(r); ++q) {
      const TileShape sh = sched.shape(r, q);
      for (std::size_t lev = 0; lev < sh.level_cols.size(); ++lev) {
        const std::int64_t t =
            sh.first_level + static_cast<std::int64_t>(lev);
        for (std::int64_t s = sh.level_cols[lev].lo;
             s < sh.level_cols[lev].hi; ++s) {
          const auto idx = static_cast<std::size_t>(t * S + s);
          ASSERT_EQ(order[idx], -1)
              << "double cover at (t=" << t << ",s=" << s << ")";
          order[idx] = clock++;
        }
      }
    }
  }
  // Exact cover.
  for (const std::int64_t o : order) ASSERT_NE(o, -1);
  // Radius-2 dependence legality.
  for (std::int64_t t = 1; t < T; ++t) {
    for (std::int64_t s = 0; s < S; ++s) {
      const std::int64_t me = order[static_cast<std::size_t>(t * S + s)];
      for (std::int64_t ds = -radius; ds <= radius; ++ds) {
        const std::int64_t sn = s + ds;
        if (sn < 0 || sn >= S) continue;
        ASSERT_LT(order[static_cast<std::size_t>((t - 1) * S + sn)], me);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometry, Radius2Coverage,
    ::testing::Values(R2Param{8, 48, 4, 4}, R2Param{12, 64, 6, 3},
                      R2Param{5, 30, 4, 2}, R2Param{16, 40, 2, 5},
                      R2Param{7, 100, 8, 6}),
    [](const ::testing::TestParamInfo<R2Param>& info) {
      const auto& p = info.param;
      return "T" + std::to_string(p.T) + "_S" + std::to_string(p.S) + "_tT" +
             std::to_string(p.tT) + "_tS" + std::to_string(p.tS1);
    });

TEST(Radius2, PitchAndWidths) {
  const HexSchedule sched(32, 256, 8, 6, 2);
  EXPECT_EQ(sched.pitch(), 2 * 6 + 2 * 8);  // 2 tS1 + r tT
  // Interior A tile: base tS1, widest tS1 + r(tT-2).
  for (std::int64_t r = 0; r < sched.num_rows(); ++r) {
    if (sched.row_family(r) != Family::kA) continue;
    for (std::int64_t q = sched.q_begin(r); q < sched.q_end(r); ++q) {
      if (!sched.is_interior(r, q)) continue;
      const TileShape sh = sched.shape(r, q);
      EXPECT_EQ(sh.level_cols.front().size(), 6);
      std::int64_t widest = 0;
      for (const auto& iv : sh.level_cols) {
        widest = std::max(widest, iv.size());
      }
      EXPECT_EQ(widest, 6 + 2 * (8 - 2));
      return;
    }
  }
  FAIL() << "no interior A tile found";
}

TEST(Radius2, InteriorFootprintNearGeneralizedEqn7) {
  // m_i generalizes to tS1 + 2 r tT (within the 2r family constant).
  const std::int64_t tT = 6;
  const std::int64_t tS1 = 5;
  const HexSchedule sched(36, 512, tT, tS1, 2);
  for (std::int64_t r = 0; r < sched.num_rows(); ++r) {
    for (std::int64_t q = sched.q_begin(r); q < sched.q_end(r); ++q) {
      if (!sched.is_interior(r, q)) continue;
      const std::int64_t mi = sched.shape(r, q).input_footprint();
      EXPECT_LE(std::llabs(mi - (tS1 + 2 * 2 * tT)), 2 * 2);
      return;
    }
  }
  FAIL() << "no interior tile found";
}

TEST(Radius2, BandsRespectRadius2Dependences) {
  const std::int64_t S = 64;
  const SkewedBands b(S, 8, 0, 8, 2);
  auto band_of = [&](std::int64_t t, std::int64_t s) {
    for (std::int64_t band = 0; band < b.num_bands(); ++band) {
      if (b.range_at(band, t).contains(s)) return band;
    }
    return static_cast<std::int64_t>(-1);
  };
  for (std::int64_t t = 1; t < 8; ++t) {
    for (std::int64_t s = 2; s + 2 < S; ++s) {
      const std::int64_t me = band_of(t, s);
      ASSERT_GE(me, 0);
      for (std::int64_t a = -2; a <= 2; ++a) {
        EXPECT_LE(band_of(t - 1, s + a), me)
            << "t=" << t << " s=" << s << " a=" << a;
      }
    }
  }
}

TEST(Radius2, BandsPartitionEachLevel) {
  const std::int64_t S = 50;
  const SkewedBands b(S, 8, 2, 10, 2);
  for (std::int64_t t = 2; t < 10; ++t) {
    std::vector<int> cover(static_cast<std::size_t>(S), 0);
    for (std::int64_t band = 0; band < b.num_bands(); ++band) {
      const Interval iv = b.range_at(band, t);
      for (std::int64_t s = iv.lo; s < iv.hi; ++s) {
        ++cover[static_cast<std::size_t>(s)];
      }
    }
    for (const int c : cover) EXPECT_EQ(c, 1);
  }
}

TEST(Radius2, FootprintFormulasScaleWithRadius) {
  const TileSizes ts{.tT = 6, .tS1 = 10, .tS2 = 16, .tS3 = 1};
  EXPECT_EQ(shared_words_per_tile(1, ts, 2), 2 * (10 + 12));
  EXPECT_EQ(shared_words_per_tile(2, ts, 2), 2 * (10 + 13) * (16 + 13));
  EXPECT_EQ(io_words_per_subtile(2, ts, 2), 16 * (10 + 2 * 2 * 6));
  // Volume equals the exact radius-2 hexagon point count.
  std::int64_t exact = 0;
  for (std::int64_t y = 0; y < ts.tT; ++y) {
    exact += ts.tS1 + 2 * 2 * std::min(y, ts.tT - 1 - y);
  }
  EXPECT_EQ(subtile_volume(1, ts, 2), exact);
}

TEST(Radius2, TiledExecutionMatchesReferenceGauss1D) {
  const auto& def = stencil::get_stencil(stencil::StencilKind::kGauss1D);
  const stencil::ProblemSize p{.dim = 1, .S = {61, 0, 0}, .T = 13};
  const auto init = stencil::make_initial_grid(p, 17);
  const auto expect = stencil::run_reference(def, p, init);
  for (const auto& ts :
       {TileSizes{.tT = 4, .tS1 = 5, .tS2 = 1, .tS3 = 1},
        TileSizes{.tT = 2, .tS1 = 2, .tS2 = 1, .tS3 = 1},
        TileSizes{.tT = 8, .tS1 = 3, .tS2 = 1, .tS3 = 1}}) {
    hhc::ExecStats stats;
    const auto got = run_tiled(def, p, ts, init, &stats);
    EXPECT_EQ(stencil::max_abs_diff(expect, got), 0.0) << ts.to_string();
    EXPECT_EQ(stats.points, p.total_points());
  }
}

TEST(Radius2, TiledExecutionMatchesReferenceWideStar2D) {
  const auto& def = stencil::get_stencil(stencil::StencilKind::kWideStar2D);
  const stencil::ProblemSize p{.dim = 2, .S = {26, 22, 0}, .T = 9};
  const auto init = stencil::make_initial_grid(p, 23);
  const auto expect = stencil::run_reference(def, p, init);
  const TileSizes ts{.tT = 4, .tS1 = 4, .tS2 = 8, .tS3 = 1};
  const auto got = run_tiled(def, p, ts, init);
  EXPECT_EQ(stencil::max_abs_diff(expect, got), 0.0);
}

TEST(Radius2, ModelAndSimulatorAgreeNearTop) {
  // The generalized model stays optimistic-but-close for a good
  // radius-2 configuration.
  const auto& def = stencil::get_stencil(stencil::StencilKind::kWideStar2D);
  const stencil::ProblemSize p{.dim = 2, .S = {2048, 2048, 0}, .T = 512};
  const model::ModelInputs in = gpusim::calibrate_model(gpusim::gtx980(), def);
  EXPECT_EQ(in.radius, 2);
  const TileSizes ts{.tT = 8, .tS1 = 16, .tS2 = 64, .tS3 = 1};
  ASSERT_TRUE(model::tile_fits(2, ts, in.hw, 2));
  const double pred = model::talg_auto_k(in, p, ts).talg;
  const auto sim = gpusim::measure_best_of(gpusim::gtx980(), def, p, ts,
                                           {.n1 = 32, .n2 = 8, .n3 = 1});
  ASSERT_TRUE(sim.feasible);
  EXPECT_LT(pred, sim.seconds * 1.10);
  EXPECT_GT(pred, sim.seconds * 0.5);
}

TEST(Radius2, TotalPointsStillExact) {
  for (const R2Param& prm :
       {R2Param{9, 37, 4, 2}, R2Param{11, 53, 6, 5}, R2Param{4, 19, 2, 3}}) {
    const HexSchedule sched(prm.T, prm.S, prm.tT, prm.tS1, 2);
    EXPECT_EQ(sched.total_points(), prm.T * prm.S);
  }
}

TEST(Radius2, RejectsTooNarrowBaseWidth) {
  // tS1 < radius would create within-wavefront dependences.
  EXPECT_THROW(HexSchedule(8, 32, 4, 1, 2), std::invalid_argument);
  EXPECT_NO_THROW(HexSchedule(8, 32, 4, 2, 2));
}

}  // namespace
}  // namespace repro::hhc
