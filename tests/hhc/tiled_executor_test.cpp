// The keystone correctness test: the HHC-tiled executor must produce
// bit-identical results to the untiled reference for every stencil,
// dimension, and a sweep of tile sizes (including degenerate ones).
#include "hhc/tiled_executor.hpp"

#include <gtest/gtest.h>

#include "common/math_util.hpp"
#include "stencil/reference.hpp"

namespace repro::hhc {
namespace {

using stencil::Grid;
using stencil::ProblemSize;
using stencil::StencilKind;

struct TiledCase {
  StencilKind kind;
  ProblemSize p;
  TileSizes ts;
};

class TiledMatchesReference : public ::testing::TestWithParam<TiledCase> {};

TEST_P(TiledMatchesReference, BitIdenticalResult) {
  const auto& [kind, p, ts] = GetParam();
  const stencil::StencilDef& def = stencil::get_stencil(kind);
  const Grid<float> init = stencil::make_initial_grid(p, 0xC0FFEE);
  const Grid<float> expect = stencil::run_reference(def, p, init);
  ExecStats stats;
  const Grid<float> got = run_tiled(def, p, ts, init, &stats);
  EXPECT_EQ(stencil::max_abs_diff(expect, got), 0.0)
      << "tiled execution diverged for " << def.name << " "
      << p.to_string() << " " << ts.to_string();
  EXPECT_EQ(stats.points, p.total_points());
}

INSTANTIATE_TEST_SUITE_P(
    Stencils, TiledMatchesReference,
    ::testing::Values(
        // 1D.
        TiledCase{StencilKind::kJacobi1D, {1, {50, 0, 0}, 17},
                  {.tT = 4, .tS1 = 5, .tS2 = 1, .tS3 = 1}},
        TiledCase{StencilKind::kJacobi1D, {1, {33, 0, 0}, 8},
                  {.tT = 2, .tS1 = 1, .tS2 = 1, .tS3 = 1}},
        TiledCase{StencilKind::kJacobi1D, {1, {64, 0, 0}, 30},
                  {.tT = 16, .tS1 = 3, .tS2 = 1, .tS3 = 1}},
        // 2D, all four paper benchmarks.
        TiledCase{StencilKind::kJacobi2D, {2, {24, 19, 0}, 11},
                  {.tT = 4, .tS1 = 4, .tS2 = 8, .tS3 = 1}},
        TiledCase{StencilKind::kHeat2D, {2, {21, 17, 0}, 9},
                  {.tT = 6, .tS1 = 3, .tS2 = 4, .tS3 = 1}},
        TiledCase{StencilKind::kLaplacian2D, {2, {16, 33, 0}, 7},
                  {.tT = 2, .tS1 = 7, .tS2 = 16, .tS3 = 1}},
        TiledCase{StencilKind::kGradient2D, {2, {18, 18, 0}, 8},
                  {.tT = 4, .tS1 = 2, .tS2 = 5, .tS3 = 1}},
        // Tile larger than the domain (single-tile degenerate case).
        TiledCase{StencilKind::kJacobi2D, {2, {8, 8, 0}, 4},
                  {.tT = 12, .tS1 = 32, .tS2 = 64, .tS3 = 1}},
        // 3D benchmarks.
        TiledCase{StencilKind::kHeat3D, {3, {10, 9, 8}, 6},
                  {.tT = 4, .tS1 = 3, .tS2 = 4, .tS3 = 2}},
        TiledCase{StencilKind::kLaplacian3D, {3, {8, 8, 12}, 5},
                  {.tT = 2, .tS1 = 2, .tS2 = 8, .tS3 = 4}},
        TiledCase{StencilKind::kJacobi3D, {3, {7, 7, 7}, 7},
                  {.tT = 6, .tS1 = 1, .tS2 = 2, .tS3 = 16}}),
    [](const ::testing::TestParamInfo<TiledCase>& info) {
      const auto& c = info.param;
      return std::string(stencil::to_string(c.kind)) + "_" +
             std::to_string(info.index);
    });

TEST(TiledExecutor, StatsCensusMatchesSchedule) {
  const stencil::StencilDef& def = stencil::get_stencil(StencilKind::kHeat2D);
  const ProblemSize p{.dim = 2, .S = {40, 24, 0}, .T = 12};
  const TileSizes ts{.tT = 4, .tS1 = 4, .tS2 = 8, .tS3 = 1};
  const Grid<float> init = stencil::make_initial_grid(p, 1);
  ExecStats stats;
  (void)run_tiled(def, p, ts, init, &stats);

  // Kernel calls = Nw (exact); model says 2*ceil(T/tT) + eps.
  const std::int64_t approx = 2 * repro::ceil_div(p.T, ts.tT);
  EXPECT_GE(stats.kernel_calls, approx);
  EXPECT_LE(stats.kernel_calls, approx + 1);
  EXPECT_GT(stats.thread_blocks, 0);
  EXPECT_GE(stats.sub_tiles, stats.thread_blocks);
  EXPECT_EQ(stats.points, p.total_points());
}

TEST(TiledExecutor, RejectsOddTimeTile) {
  const stencil::StencilDef& def = stencil::get_stencil(StencilKind::kJacobi1D);
  const ProblemSize p{.dim = 1, .S = {16, 0, 0}, .T = 4};
  const Grid<float> init = stencil::make_initial_grid(p, 1);
  EXPECT_THROW(
      run_tiled(def, p, {.tT = 3, .tS1 = 4, .tS2 = 1, .tS3 = 1}, init),
      std::invalid_argument);
}

TEST(TiledExecutor, RejectsDimMismatch) {
  const stencil::StencilDef& def = stencil::get_stencil(StencilKind::kJacobi2D);
  const ProblemSize p{.dim = 3, .S = {8, 8, 8}, .T = 2};
  const Grid<float> init(3, p.S);
  EXPECT_THROW(
      run_tiled(def, p, {.tT = 2, .tS1 = 2, .tS2 = 2, .tS3 = 2}, init),
      std::invalid_argument);
}

TEST(TiledExecutor, ParallelRowsMatchSerialExecution) {
  // Tiles within a wavefront row are independent, so the OpenMP
  // variant must be bit-identical to the serial one — for every
  // dimension and including a radius-2 stencil.
  struct Case {
    StencilKind kind;
    ProblemSize p;
    TileSizes ts;
  };
  const Case cases[] = {
      {StencilKind::kJacobi1D, {1, {120, 0, 0}, 24},
       {.tT = 6, .tS1 = 4, .tS2 = 1, .tS3 = 1}},
      {StencilKind::kHeat2D, {2, {48, 40, 0}, 14},
       {.tT = 4, .tS1 = 4, .tS2 = 8, .tS3 = 1}},
      {StencilKind::kHeat3D, {3, {12, 12, 12}, 6},
       {.tT = 2, .tS1 = 2, .tS2 = 4, .tS3 = 4}},
      {StencilKind::kWideStar2D, {2, {30, 30, 0}, 8},
       {.tT = 4, .tS1 = 4, .tS2 = 8, .tS3 = 1}},
  };
  for (const Case& c : cases) {
    const stencil::StencilDef& def = stencil::get_stencil(c.kind);
    const Grid<float> init = stencil::make_initial_grid(c.p, 77);
    ExecStats serial_stats;
    ExecStats parallel_stats;
    const Grid<float> serial = run_tiled(def, c.p, c.ts, init, &serial_stats);
    const Grid<float> parallel =
        run_tiled_parallel(def, c.p, c.ts, init, &parallel_stats);
    EXPECT_EQ(stencil::max_abs_diff(serial, parallel), 0.0) << def.name;
    EXPECT_EQ(serial_stats.points, parallel_stats.points);
    EXPECT_EQ(serial_stats.thread_blocks, parallel_stats.thread_blocks);
    EXPECT_EQ(serial_stats.kernel_calls, parallel_stats.kernel_calls);
  }
}

TEST(TiledExecutor, SingleTimeStep) {
  const stencil::StencilDef& def = stencil::get_stencil(StencilKind::kJacobi2D);
  const ProblemSize p{.dim = 2, .S = {12, 12, 0}, .T = 1};
  const Grid<float> init = stencil::make_initial_grid(p, 3);
  const Grid<float> expect = stencil::run_reference(def, p, init);
  const Grid<float> got =
      run_tiled(def, p, {.tT = 4, .tS1 = 4, .tS2 = 4, .tS3 = 1}, init);
  EXPECT_EQ(stencil::max_abs_diff(expect, got), 0.0);
}

}  // namespace
}  // namespace repro::hhc
