#include "hhc/footprint.hpp"

#include <gtest/gtest.h>

namespace repro::hhc {
namespace {

TEST(Footprint, SharedWords1D) {
  const TileSizes ts{.tT = 8, .tS1 = 16, .tS2 = 1, .tS3 = 1};
  EXPECT_EQ(shared_words_per_tile(1, ts), 2 * (16 + 8));
}

TEST(Footprint, SharedWords2DMatchesEqn19) {
  const TileSizes ts{.tT = 6, .tS1 = 10, .tS2 = 32, .tS3 = 1};
  EXPECT_EQ(shared_words_per_tile(2, ts), 2 * (10 + 6 + 1) * (32 + 6 + 1));
}

TEST(Footprint, SharedWords3DExtendsPattern) {
  const TileSizes ts{.tT = 4, .tS1 = 4, .tS2 = 8, .tS3 = 16};
  EXPECT_EQ(shared_words_per_tile(3, ts),
            2 * (4 + 4 + 1) * (8 + 4 + 1) * (16 + 4 + 1));
}

TEST(Footprint, SharedBytesIsFourPerWord) {
  const TileSizes ts{.tT = 4, .tS1 = 4, .tS2 = 4, .tS3 = 1};
  EXPECT_EQ(shared_bytes_per_tile(2, ts), 4 * shared_words_per_tile(2, ts));
}

TEST(Footprint, IoWordsMatchEqns7And13And24) {
  const TileSizes ts{.tT = 6, .tS1 = 10, .tS2 = 32, .tS3 = 8};
  EXPECT_EQ(io_words_per_subtile(1, ts), 10 + 2 * 6);            // Eqn 7
  EXPECT_EQ(io_words_per_subtile(2, ts), 32 * (10 + 2 * 6));     // Eqn 13
  EXPECT_EQ(io_words_per_subtile(3, ts), 32 * 8 * (10 + 2 * 6)); // Eqn 24
}

TEST(Footprint, SubtileVolumeMatchesEqn26) {
  const TileSizes ts{.tT = 6, .tS1 = 10, .tS2 = 5, .tS3 = 3};
  const std::int64_t w_tile = 10 + 6 - 2;
  const std::int64_t hex = 6 * (w_tile + 10) / 2;
  EXPECT_EQ(subtile_volume(1, ts), hex);
  EXPECT_EQ(subtile_volume(2, ts), hex * 5);
  EXPECT_EQ(subtile_volume(3, ts), hex * 5 * 3);
}

TEST(Footprint, VolumeMatchesExactHexagonArea) {
  // Eqn 26's area formula equals the discrete hexagon point count:
  // sum of tS1 + 2*min(y, tT-1-y) over y = tT*(tS1 + tT/2 - 1)
  //   = tT*(w_tile + tS1)/2.
  for (std::int64_t tT : {2, 4, 8, 12}) {
    for (std::int64_t tS1 : {1, 4, 9}) {
      std::int64_t exact = 0;
      for (std::int64_t y = 0; y < tT; ++y) {
        exact += tS1 + 2 * std::min(y, tT - 1 - y);
      }
      const TileSizes ts{.tT = tT, .tS1 = tS1, .tS2 = 1, .tS3 = 1};
      EXPECT_EQ(subtile_volume(1, ts), exact) << "tT=" << tT;
    }
  }
}

TEST(Footprint, MonotoneInEachTileSize) {
  const TileSizes base{.tT = 8, .tS1 = 8, .tS2 = 32, .tS3 = 8};
  for (int dim = 1; dim <= 3; ++dim) {
    TileSizes bigger = base;
    bigger.tT += 2;
    EXPECT_GT(shared_words_per_tile(dim, bigger),
              shared_words_per_tile(dim, base));
    bigger = base;
    bigger.tS1 += 1;
    EXPECT_GT(shared_words_per_tile(dim, bigger),
              shared_words_per_tile(dim, base));
  }
}

}  // namespace
}  // namespace repro::hhc
