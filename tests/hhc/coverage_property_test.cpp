// Property tests for the tiling geometry: exact cover (every iteration
// point in exactly one tile) and dependence legality (the wavefront
// order never reads an unwritten value). These are the foundations of
// both the functional executor's correctness and the model's counting
// formulas.
#include <gtest/gtest.h>

#include <map>
#include <tuple>
#include <vector>

#include "hhc/hex_schedule.hpp"

namespace repro::hhc {
namespace {

struct GeometryParam {
  std::int64_t T;
  std::int64_t S;
  std::int64_t tT;
  std::int64_t tS1;
};

class HexCoverage : public ::testing::TestWithParam<GeometryParam> {};

TEST_P(HexCoverage, EveryPointCoveredExactlyOnce) {
  const auto [T, S, tT, tS1] = GetParam();
  const HexSchedule sched(T, S, tT, tS1);
  std::vector<int> cover(static_cast<std::size_t>(T * S), 0);
  for (std::int64_t r = 0; r < sched.num_rows(); ++r) {
    for (std::int64_t q = sched.q_begin(r); q < sched.q_end(r); ++q) {
      const TileShape sh = sched.shape(r, q);
      for (std::size_t lev = 0; lev < sh.level_cols.size(); ++lev) {
        const std::int64_t t =
            sh.first_level + static_cast<std::int64_t>(lev);
        const Interval& iv = sh.level_cols[lev];
        for (std::int64_t s = iv.lo; s < iv.hi; ++s) {
          ASSERT_GE(t, 0);
          ASSERT_LT(t, T);
          ASSERT_GE(s, 0);
          ASSERT_LT(s, S);
          ++cover[static_cast<std::size_t>(t * S + s)];
        }
      }
    }
  }
  for (std::int64_t t = 0; t < T; ++t) {
    for (std::int64_t s = 0; s < S; ++s) {
      EXPECT_EQ(cover[static_cast<std::size_t>(t * S + s)], 1)
          << "point (t=" << t << ", s=" << s << ")";
    }
  }
}

TEST_P(HexCoverage, WavefrontOrderRespectsDependences) {
  // Execute tiles in (row, q) order, each tile bottom-up; check that
  // every radius-1 read at t-1 targets an already-computed in-domain
  // point. This is the legality proof of one-row-per-kernel.
  const auto [T, S, tT, tS1] = GetParam();
  const HexSchedule sched(T, S, tT, tS1);
  std::vector<std::int64_t> order(static_cast<std::size_t>(T * S), -1);
  std::int64_t clock = 0;
  for (std::int64_t r = 0; r < sched.num_rows(); ++r) {
    for (std::int64_t q = sched.q_begin(r); q < sched.q_end(r); ++q) {
      const TileShape sh = sched.shape(r, q);
      for (std::size_t lev = 0; lev < sh.level_cols.size(); ++lev) {
        const std::int64_t t =
            sh.first_level + static_cast<std::int64_t>(lev);
        const Interval& iv = sh.level_cols[lev];
        for (std::int64_t s = iv.lo; s < iv.hi; ++s) {
          order[static_cast<std::size_t>(t * S + s)] = clock++;
        }
      }
    }
  }
  for (std::int64_t t = 1; t < T; ++t) {
    for (std::int64_t s = 0; s < S; ++s) {
      const std::int64_t me = order[static_cast<std::size_t>(t * S + s)];
      for (std::int64_t ds = -1; ds <= 1; ++ds) {
        const std::int64_t sn = s + ds;
        if (sn < 0 || sn >= S) continue;
        const std::int64_t dep =
            order[static_cast<std::size_t>((t - 1) * S + sn)];
        ASSERT_LT(dep, me) << "(t=" << t << ",s=" << s << ") reads (t-1,"
                           << sn << ") before it is written";
      }
    }
  }
}

TEST_P(HexCoverage, TilesWithinRowAreIndependent) {
  // No tile reads a value produced by another tile of the same row:
  // all cross-tile reads resolve to strictly earlier rows.
  const auto [T, S, tT, tS1] = GetParam();
  const HexSchedule sched(T, S, tT, tS1);
  // Map each point to its (row, q).
  std::map<std::pair<std::int64_t, std::int64_t>,
           std::pair<std::int64_t, std::int64_t>>
      owner;
  for (std::int64_t r = 0; r < sched.num_rows(); ++r) {
    for (std::int64_t q = sched.q_begin(r); q < sched.q_end(r); ++q) {
      const TileShape sh = sched.shape(r, q);
      for (std::size_t lev = 0; lev < sh.level_cols.size(); ++lev) {
        const std::int64_t t =
            sh.first_level + static_cast<std::int64_t>(lev);
        for (std::int64_t s = sh.level_cols[lev].lo;
             s < sh.level_cols[lev].hi; ++s) {
          owner[{t, s}] = {r, q};
        }
      }
    }
  }
  for (const auto& [pt, rq] : owner) {
    const auto [t, s] = pt;
    if (t == 0) continue;
    for (std::int64_t ds = -1; ds <= 1; ++ds) {
      const std::int64_t sn = s + ds;
      if (sn < 0 || sn >= S) continue;
      const auto dep = owner.at({t - 1, sn});
      if (dep.first == rq.first) {
        EXPECT_EQ(dep.second, rq.second)
            << "cross-tile dependence within one wavefront row at (t=" << t
            << ",s=" << s << ")";
      } else {
        EXPECT_LT(dep.first, rq.first);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometry, HexCoverage,
    ::testing::Values(GeometryParam{8, 32, 4, 4}, GeometryParam{16, 64, 8, 3},
                      GeometryParam{7, 40, 4, 1}, GeometryParam{4, 10, 2, 2},
                      GeometryParam{20, 33, 6, 5}, GeometryParam{5, 64, 8, 4},
                      GeometryParam{12, 20, 2, 1},
                      GeometryParam{9, 128, 10, 7},
                      GeometryParam{32, 16, 4, 8},
                      GeometryParam{3, 7, 6, 3}),
    [](const ::testing::TestParamInfo<GeometryParam>& info) {
      const auto& p = info.param;
      return "T" + std::to_string(p.T) + "_S" + std::to_string(p.S) + "_tT" +
             std::to_string(p.tT) + "_tS" + std::to_string(p.tS1);
    });

}  // namespace
}  // namespace repro::hhc
