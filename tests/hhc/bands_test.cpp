#include "hhc/bands.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/math_util.hpp"

namespace repro::hhc {
namespace {

TEST(Bands, CountMatchesPaperEqn23Shape) {
  // For a full prism spanning tT levels: ceil((S + tT)/tS) bands
  // within +-1 (Eqn 23 counts the skew overhang the same way).
  for (std::int64_t S : {31, 64, 100}) {
    for (std::int64_t ts : {4, 8, 32}) {
      for (std::int64_t tT : {2, 4, 8}) {
        const SkewedBands b(S, ts, 0, tT);
        const std::int64_t model = repro::ceil_div(S + tT, ts);
        EXPECT_NEAR(static_cast<double>(b.num_bands()),
                    static_cast<double>(model), 1.0)
            << "S=" << S << " ts=" << ts << " tT=" << tT;
      }
    }
  }
}

TEST(Bands, RangesPartitionEachLevel) {
  const std::int64_t S = 40;
  const SkewedBands b(S, 8, 3, 9);
  for (std::int64_t t = 3; t < 9; ++t) {
    std::vector<int> cover(static_cast<std::size_t>(S), 0);
    for (std::int64_t band = 0; band < b.num_bands(); ++band) {
      const Interval iv = b.range_at(band, t);
      for (std::int64_t s = iv.lo; s < iv.hi; ++s) {
        ++cover[static_cast<std::size_t>(s)];
      }
    }
    for (std::int64_t s = 0; s < S; ++s) {
      EXPECT_EQ(cover[static_cast<std::size_t>(s)], 1)
          << "t=" << t << " s=" << s;
    }
  }
}

TEST(Bands, SkewShiftsWithTime) {
  const SkewedBands b(100, 10, 0, 8);
  // Band ranges move one cell down per time level (normal (1,0,1)).
  const Interval at0 = b.range_at(3, 0);
  const Interval at1 = b.range_at(3, 1);
  EXPECT_EQ(at1.lo, at0.lo - 1);
  EXPECT_EQ(at1.hi, at0.hi - 1);
}

TEST(Bands, AscendingBandOrderIsLegal) {
  // For dependence (t-1, s+1): same band (t+s invariant). For
  // (t-1, s-1): strictly earlier band index. Verify by construction.
  const std::int64_t S = 64;
  const std::int64_t ts = 8;
  const SkewedBands b(S, ts, 0, 16);
  auto band_of = [&](std::int64_t t, std::int64_t s) {
    for (std::int64_t band = 0; band < b.num_bands(); ++band) {
      if (b.range_at(band, t).contains(s)) return band;
    }
    return static_cast<std::int64_t>(-1);
  };
  for (std::int64_t t = 1; t < 16; ++t) {
    for (std::int64_t s = 1; s + 1 < S; ++s) {
      const std::int64_t me = band_of(t, s);
      ASSERT_GE(me, 0);
      EXPECT_EQ(band_of(t - 1, s + 1), me);
      EXPECT_LE(band_of(t - 1, s - 1), me);
      EXPECT_LE(band_of(t - 1, s), me);
    }
  }
}

TEST(Bands, ClippedAtDomainEdges) {
  const SkewedBands b(16, 8, 0, 4);
  for (std::int64_t band = 0; band < b.num_bands(); ++band) {
    for (std::int64_t t = 0; t < 4; ++t) {
      const Interval iv = b.range_at(band, t);
      EXPECT_GE(iv.lo, 0);
      EXPECT_LE(iv.hi, 16);
    }
  }
}

}  // namespace
}  // namespace repro::hhc
