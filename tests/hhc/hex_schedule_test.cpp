#include "hhc/hex_schedule.hpp"

#include <gtest/gtest.h>

#include "common/math_util.hpp"

namespace repro::hhc {
namespace {

TEST(HexSchedule, RejectsBadParameters) {
  EXPECT_THROW(HexSchedule(10, 10, 3, 4), std::invalid_argument);  // odd tT
  EXPECT_THROW(HexSchedule(10, 10, 0, 4), std::invalid_argument);
  EXPECT_THROW(HexSchedule(10, 10, 4, 0), std::invalid_argument);
  EXPECT_THROW(HexSchedule(0, 10, 4, 4), std::invalid_argument);
}

TEST(HexSchedule, RowCountMatchesPaperEqn3) {
  // Nw = 2*ceil(T/tT) + eps with eps in {0, 1} (Eqn 3).
  for (std::int64_t T : {1, 2, 5, 8, 16, 17, 31, 100}) {
    for (std::int64_t tT : {2, 4, 8}) {
      const HexSchedule s(T, 64, tT, 4);
      const std::int64_t approx = 2 * repro::ceil_div(T, tT);
      EXPECT_GE(s.num_rows(), approx) << "T=" << T << " tT=" << tT;
      EXPECT_LE(s.num_rows(), approx + 1) << "T=" << T << " tT=" << tT;
    }
  }
}

TEST(HexSchedule, RowsAlternateFamiliesSortedByBase) {
  const HexSchedule s(32, 64, 4, 4);
  std::int64_t prev = s.row_base(0);
  for (std::int64_t r = 1; r < s.num_rows(); ++r) {
    EXPECT_GT(s.row_base(r), prev);
    EXPECT_NE(static_cast<int>(s.row_family(r)),
              static_cast<int>(s.row_family(r - 1)));
    prev = s.row_base(r);
  }
}

TEST(HexSchedule, RowLevelsClippedToDomain) {
  const HexSchedule s(10, 64, 4, 4);
  for (std::int64_t r = 0; r < s.num_rows(); ++r) {
    const Interval lv = s.row_levels(r);
    EXPECT_GE(lv.lo, 0);
    EXPECT_LE(lv.hi, 10);
    EXPECT_FALSE(lv.empty()) << "row " << r << " must cover some levels";
  }
}

TEST(HexSchedule, TilesPerRowNearModelEqn5) {
  // w(i) ~ ceil(S / (2 tS1 + tT)); exact count within +-1 of that.
  for (std::int64_t S : {64, 100, 1024}) {
    for (std::int64_t tS1 : {2, 4, 16}) {
      for (std::int64_t tT : {2, 4, 8}) {
        const HexSchedule s(4 * tT, S, tT, tS1);
        const std::int64_t model = repro::ceil_div(S, 2 * tS1 + tT);
        for (std::int64_t r = 0; r < s.num_rows(); ++r) {
          EXPECT_NEAR(static_cast<double>(s.tiles_in_row(r)),
                      static_cast<double>(model), 1.0)
              << "S=" << S << " tS1=" << tS1 << " tT=" << tT << " row " << r;
        }
      }
    }
  }
}

TEST(HexSchedule, InteriorTileWidthsMatchPaperEqn4) {
  const std::int64_t tT = 8;
  const std::int64_t tS1 = 5;
  const HexSchedule s(64, 256, tT, tS1);
  // Find an interior tile and check base width tS1, max width
  // w_tile = tS1 + tT - 2 (Eqn 4), symmetric profile.
  bool found_a = false;
  bool found_b = false;
  for (std::int64_t r = 0; r < s.num_rows() && !(found_a && found_b); ++r) {
    for (std::int64_t q = s.q_begin(r); q < s.q_end(r); ++q) {
      if (!s.is_interior(r, q)) continue;
      // Family B hexagons are two columns wider at the base — the
      // interlocking complement of the A hexagons.
      const std::int64_t base =
          (s.row_family(r) == Family::kA) ? tS1 : tS1 + 2;
      const TileShape sh = s.shape(r, q);
      ASSERT_EQ(sh.level_cols.size(), static_cast<std::size_t>(tT));
      EXPECT_EQ(sh.level_cols.front().size(), base);
      EXPECT_EQ(sh.level_cols.back().size(), base);
      std::int64_t widest = 0;
      for (const auto& iv : sh.level_cols) {
        widest = std::max(widest, iv.size());
      }
      // Eqn 4 (w_tile = tS1 + tT - 2) holds exactly for family A.
      EXPECT_EQ(widest, base + tT - 2);
      // Symmetry.
      for (std::size_t y = 0; y < sh.level_cols.size(); ++y) {
        EXPECT_EQ(sh.level_cols[y].size(),
                  sh.level_cols[sh.level_cols.size() - 1 - y].size());
      }
      (s.row_family(r) == Family::kA ? found_a : found_b) = true;
      break;
    }
  }
  EXPECT_TRUE(found_a);
  EXPECT_TRUE(found_b);
}

TEST(HexSchedule, InteriorFootprintsMatchModelWithinConstant) {
  // Model: m_i = m_o = tS1 + 2*tT (Eqn 7); the exact interlocking
  // geometry gives tS1 + 2*tT - 2.
  for (std::int64_t tT : {2, 4, 8, 16}) {
    for (std::int64_t tS1 : {1, 3, 8, 20}) {
      const HexSchedule s(8 * tT, 512, tT, tS1);
      for (std::int64_t r = 0; r < s.num_rows(); ++r) {
        for (std::int64_t q = s.q_begin(r); q < s.q_end(r); ++q) {
          if (!s.is_interior(r, q)) continue;
          const TileShape sh = s.shape(r, q);
          // A tiles: tS1 + 2 tT - 2; B tiles: tS1 + 2 tT (= Eqn 7).
          EXPECT_LE(std::llabs(sh.input_footprint() - (tS1 + 2 * tT)), 2)
              << "tT=" << tT << " tS1=" << tS1;
          // Interior, non-final tiles: m_o ~ m_i (paper Section 4.1.1
          // treats them as equal; exactly, m_o = m_i - 2).
          if (sh.first_level +
                  static_cast<std::int64_t>(sh.level_cols.size()) <
              s.T()) {
            // Degenerate widths (tS1 = 1) push the gap to 3.
            EXPECT_LE(std::llabs(sh.output_footprint(s.T()) -
                                 sh.input_footprint()),
                      3);
          }
          r = s.num_rows();  // one interior tile is enough per config
          break;
        }
      }
    }
  }
}

TEST(HexSchedule, TotalPointsEqualsIterationSpace) {
  for (std::int64_t T : {1, 3, 8, 13}) {
    for (std::int64_t S : {5, 32, 57}) {
      for (std::int64_t tT : {2, 4, 6}) {
        for (std::int64_t tS1 : {1, 3, 7}) {
          const HexSchedule s(T, S, tT, tS1);
          EXPECT_EQ(s.total_points(), T * S)
              << "T=" << T << " S=" << S << " tT=" << tT << " tS1=" << tS1;
        }
      }
    }
  }
}

TEST(HexSchedule, ShapeOutsideDomainIsEmpty) {
  const HexSchedule s(8, 16, 4, 4);
  // Far-away column index: no points.
  EXPECT_TRUE(s.shape(0, 1000).empty());
}

}  // namespace
}  // namespace repro::hhc
