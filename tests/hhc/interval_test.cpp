#include "hhc/interval.hpp"

#include <gtest/gtest.h>

namespace repro::hhc {
namespace {

TEST(Interval, SizeAndEmptiness) {
  EXPECT_EQ((Interval{2, 5}).size(), 3);
  EXPECT_TRUE((Interval{5, 5}).empty());
  EXPECT_TRUE((Interval{7, 3}).empty());
  EXPECT_EQ((Interval{7, 3}).size(), 0);
}

TEST(Interval, Contains) {
  const Interval iv{2, 5};
  EXPECT_FALSE(iv.contains(1));
  EXPECT_TRUE(iv.contains(2));
  EXPECT_TRUE(iv.contains(4));
  EXPECT_FALSE(iv.contains(5));  // half-open
}

TEST(Interval, Clipping) {
  const Interval iv{-3, 10};
  EXPECT_EQ(iv.clipped(0, 8), (Interval{0, 8}));
  EXPECT_EQ(iv.clipped(-5, 20), (Interval{-3, 10}));
  EXPECT_TRUE(iv.clipped(12, 20).empty());
}

TEST(Interval, Equality) {
  EXPECT_EQ((Interval{1, 2}), (Interval{1, 2}));
  EXPECT_NE((Interval{1, 2}), (Interval{1, 3}));
}

}  // namespace
}  // namespace repro::hhc
