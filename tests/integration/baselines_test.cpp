// Cross-scheme integration: the tuned hexagonal schedule must beat the
// tuned ghost-zone baseline (the reason HHC exists), and both must
// compute identical numerics.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/log.hpp"
#include "gpusim/microbench.hpp"
#include "hhc/tiled_executor.hpp"
#include "overtile/ghost.hpp"
#include "stencil/reference.hpp"
#include "tuner/optimizer.hpp"

namespace repro {
namespace {

using stencil::get_stencil;
using stencil::ProblemSize;
using stencil::StencilKind;

TEST(Baselines, HexAndGhostComputeIdenticalResults) {
  const auto& def = get_stencil(StencilKind::kHeat2D);
  const ProblemSize p{.dim = 2, .S = {30, 26, 0}, .T = 10};
  const auto init = stencil::make_initial_grid(p, 3);
  const auto hex = hhc::run_tiled(
      def, p, {.tT = 4, .tS1 = 5, .tS2 = 8, .tS3 = 1}, init);
  const auto ghost = overtile::run_ghost(
      def, p, {.tT = 3, .b = {8, 8, 1}}, init);
  EXPECT_EQ(stencil::max_abs_diff(hex, ghost), 0.0);
}

TEST(Baselines, TunedHexBeatsTunedGhost) {
  // The Section 2 claim, as an assertion: after tuning both schemes,
  // hexagonal tiling wins (it never recomputes).
  const auto& def = get_stencil(StencilKind::kJacobi2D);
  const ProblemSize p{.dim = 2, .S = {4096, 4096, 0}, .T = 1024};
  const auto& dev = gpusim::gtx980();
  const model::ModelInputs in = gpusim::calibrate_model(dev, def);

  // Hex: model-guided candidates, best measured.
  tuner::EnumOptions opt;
  opt.tT_max = 24;
  opt.tS1_max = 32;
  opt.tS1_step = 4;
  const auto space = tuner::enumerate_feasible(2, in.hw, opt);
  const auto sweep = tuner::sweep_model(in, p, space, 0.10);
  double hex_best = std::numeric_limits<double>::infinity();
  for (const auto& ts : sweep.candidates) {
    const auto ep = tuner::best_over_threads(dev, def, p, in, ts);
    if (ep.feasible) hex_best = std::min(hex_best, ep.texec);
  }

  // Ghost: exhaustive over its own small space.
  double ghost_best = std::numeric_limits<double>::infinity();
  for (const std::int64_t tT : {1LL, 2LL, 4LL, 8LL}) {
    for (const std::int64_t b1 : {8LL, 16LL, 32LL}) {
      for (const std::int64_t b2 : {32LL, 64LL, 128LL}) {
        for (const auto& thr : tuner::default_thread_configs(2)) {
          const auto r = overtile::measure_ghost_best_of(
              dev, def, p, {.tT = tT, .b = {b1, b2, 1}}, thr);
          if (r.feasible) ghost_best = std::min(ghost_best, r.seconds);
        }
      }
    }
  }

  ASSERT_TRUE(std::isfinite(hex_best));
  ASSERT_TRUE(std::isfinite(ghost_best));
  EXPECT_LT(hex_best, ghost_best);
}

TEST(Baselines, GhostAtDepthOneIsTheNaivePerStepScheme) {
  // tT = 1 ghost tiling is exactly the classic one-kernel-per-step
  // wavefront code the paper's Section 4.3 closes with; it must be
  // strictly memory-bound and much slower than time-tiled execution.
  const auto& def = get_stencil(StencilKind::kJacobi2D);
  const ProblemSize p{.dim = 2, .S = {4096, 4096, 0}, .T = 512};
  const auto& dev = gpusim::gtx980();
  const hhc::ThreadConfig thr{.n1 = 32, .n2 = 8, .n3 = 1};

  const auto naive = overtile::measure_ghost_best_of(
      dev, def, p, {.tT = 1, .b = {32, 128, 1}}, thr);
  const auto tiled = gpusim::measure_best_of(
      dev, def, p, {.tT = 16, .tS1 = 16, .tS2 = 64, .tS3 = 1}, thr);
  ASSERT_TRUE(naive.feasible);
  ASSERT_TRUE(tiled.feasible);
  EXPECT_GT(naive.seconds, tiled.seconds * 1.5);
}

TEST(LogThreshold, RuntimeOverride) {
  const LogLevel before = log_threshold();
  set_log_threshold(LogLevel::kError);
  EXPECT_EQ(log_threshold(), LogLevel::kError);
  set_log_threshold(before);
}

}  // namespace
}  // namespace repro
