// End-to-end pipeline: calibrate -> predict -> measure -> optimize,
// on reduced problem sizes, checking the cross-module contracts.
#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "gpusim/microbench.hpp"
#include "gpusim/timing.hpp"
#include "hhc/tiled_executor.hpp"
#include "model/talg.hpp"
#include "stencil/reference.hpp"
#include "tuner/optimizer.hpp"

namespace repro {
namespace {

using stencil::get_stencil;
using stencil::ProblemSize;
using stencil::StencilKind;

TEST(Pipeline, ModelIsOptimisticNearGoodConfigurations) {
  // For a well-shaped configuration the model should predict a time
  // less than (or close to) the simulator's measurement — by design
  // it ignores overheads.
  const auto& def = get_stencil(StencilKind::kHeat2D);
  const ProblemSize p{.dim = 2, .S = {2048, 2048, 0}, .T = 512};
  const model::ModelInputs in = gpusim::calibrate_model(gpusim::gtx980(), def);
  const hhc::TileSizes ts{.tT = 8, .tS1 = 16, .tS2 = 64, .tS3 = 1};
  const hhc::ThreadConfig thr{.n1 = 32, .n2 = 8, .n3 = 1};

  const double predicted = model::talg_auto_k(in, p, ts).talg;
  const gpusim::SimResult measured =
      gpusim::measure_best_of(gpusim::gtx980(), def, p, ts, thr);
  ASSERT_TRUE(measured.feasible);
  EXPECT_LT(predicted, measured.seconds * 1.15);
}

TEST(Pipeline, ModelPredictionCorrelatesWithSimulatorAcrossSizesAndTiles) {
  // The paper's Fig. 3 pools all problem sizes of an experiment into
  // one scatter; correlation is over that pooled cloud.
  const auto& def = get_stencil(StencilKind::kJacobi2D);
  const model::ModelInputs in = gpusim::calibrate_model(gpusim::gtx980(), def);
  const hhc::ThreadConfig thr{.n1 = 32, .n2 = 8, .n3 = 1};

  std::vector<double> pred;
  std::vector<double> meas;
  for (std::int64_t T : {256, 512, 1024, 2048}) {
    const ProblemSize p{.dim = 2, .S = {4096, 4096, 0}, .T = T};
    for (std::int64_t tT : {4, 8, 16}) {
      for (std::int64_t tS1 : {8, 16, 32}) {
        const hhc::TileSizes ts{.tT = tT, .tS1 = tS1, .tS2 = 64, .tS3 = 1};
        if (!model::tile_fits(2, ts, in.hw)) continue;
        const auto r =
            gpusim::measure_best_of(gpusim::gtx980(), def, p, ts, thr);
        if (!r.feasible) continue;
        pred.push_back(model::talg_auto_k(in, p, ts).talg);
        meas.push_back(r.seconds);
      }
    }
  }
  ASSERT_GT(pred.size(), 20u);
  EXPECT_GT(pearson(pred, meas), 0.9);
}

TEST(Pipeline, TunedTileBeatsUntunedDefaultFunctionally) {
  // Run the actual numeric computation with both the HHC-default tile
  // and a tuned tile: identical results, different predicted cost.
  const auto& def = get_stencil(StencilKind::kHeat2D);
  const ProblemSize p{.dim = 2, .S = {48, 40, 0}, .T = 16};
  const stencil::Grid<float> init = stencil::make_initial_grid(p, 99);

  const hhc::TileSizes dflt = tuner::hhc_default_tiles(2);
  const hhc::TileSizes tuned{.tT = 8, .tS1 = 8, .tS2 = 16, .tS3 = 1};
  const auto a = hhc::run_tiled(def, p, dflt, init);
  const auto b = hhc::run_tiled(def, p, tuned, init);
  EXPECT_EQ(stencil::max_abs_diff(a, b), 0.0);
}

TEST(Pipeline, CandidateSetIsSmall) {
  // Contribution 3: the within-10% set is small enough to evaluate
  // empirically (paper: < 200 of tens of thousands).
  const auto& def = get_stencil(StencilKind::kGradient2D);
  const ProblemSize p{.dim = 2, .S = {2048, 2048, 0}, .T = 512};
  const model::ModelInputs in = gpusim::calibrate_model(gpusim::gtx980(), def);
  tuner::EnumOptions opt;
  opt.tT_max = 32;
  opt.tS1_max = 48;
  opt.tS1_step = 2;
  opt.tS2_max = 256;
  const auto space = tuner::enumerate_feasible(2, in.hw, opt);
  const tuner::ModelSweep sweep = tuner::sweep_model(in, p, space, 0.10);
  EXPECT_GT(space.size(), 1000u);
  EXPECT_LT(sweep.candidates.size(), 400u);
}

TEST(Pipeline, SimulatorAgreesWithExecutorCensus) {
  // The timing engine's kernel count must equal the functional
  // executor's kernel count (both derive from HexSchedule).
  const auto& def = get_stencil(StencilKind::kJacobi2D);
  const ProblemSize p{.dim = 2, .S = {64, 48, 0}, .T = 24};
  const hhc::TileSizes ts{.tT = 4, .tS1 = 6, .tS2 = 8, .tS3 = 1};

  hhc::ExecStats stats;
  (void)hhc::run_tiled(def, p, ts, stencil::make_initial_grid(p, 5), &stats);

  const gpusim::SimResult sim = gpusim::simulate_time(
      gpusim::gtx980(), def, p, ts, {.n1 = 32, .n2 = 2, .n3 = 1});
  ASSERT_TRUE(sim.feasible);
  EXPECT_EQ(sim.kernel_calls, stats.kernel_calls);
}

}  // namespace
}  // namespace repro
