// Miniature version of the paper's Section 5.3 validation: over a
// baseline-style sweep, the model's relative RMSE is much smaller on
// the top-performing subset than on the whole set. This is the
// paper's headline claim, so it gets its own integration test.
#include <gtest/gtest.h>

#include <vector>

#include "common/stats.hpp"
#include "gpusim/microbench.hpp"
#include "gpusim/timing.hpp"
#include "hhc/footprint.hpp"
#include "model/talg.hpp"
#include "tuner/optimizer.hpp"
#include "tuner/space.hpp"

namespace repro {
namespace {

using stencil::get_stencil;
using stencil::ProblemSize;
using stencil::StencilKind;

struct SweepData {
  std::vector<double> predicted;
  std::vector<double> observed;
  std::vector<double> gflops;
};

SweepData run_sweep(const gpusim::DeviceParams& dev,
                    const stencil::StencilDef& def, const ProblemSize& p) {
  const model::ModelInputs in = gpusim::calibrate_model(dev, def);
  tuner::EnumOptions opt;
  opt.tT_max = 24;
  opt.tT_step = 2;
  opt.tS1_max = 40;
  opt.tS1_step = 4;
  opt.tS2_max = 256;
  opt.tS2_step = 32;
  const auto tiles = tuner::enumerate_feasible(p.dim, in.hw, opt);

  SweepData data;
  const auto threads = tuner::default_thread_configs(p.dim);
  for (std::size_t i = 0; i < tiles.size(); i += 3) {  // subsample
    for (std::size_t j = 0; j < threads.size(); j += 4) {
      const auto res =
          gpusim::measure_best_of(dev, def, p, tiles[i], threads[j]);
      if (!res.feasible) continue;
      data.predicted.push_back(model::talg_auto_k(in, p, tiles[i]).talg);
      data.observed.push_back(res.seconds);
      data.gflops.push_back(res.gflops);
    }
  }
  return data;
}

TEST(ValidationShape, RmseSmallOnTopPerformersLargeOverall) {
  const auto& def = get_stencil(StencilKind::kHeat2D);
  const ProblemSize p{.dim = 2, .S = {2048, 2048, 0}, .T = 512};
  const SweepData data = run_sweep(gpusim::gtx980(), def, p);
  ASSERT_GT(data.predicted.size(), 50u);

  const double rmse_all = relative_rmse(data.predicted, data.observed);

  const auto top = indices_within_of_max(data.gflops, 0.20);
  ASSERT_GE(top.size(), 3u);
  std::vector<double> pred_top;
  std::vector<double> obs_top;
  for (const std::size_t i : top) {
    pred_top.push_back(data.predicted[i]);
    obs_top.push_back(data.observed[i]);
  }
  const double rmse_top = relative_rmse(pred_top, obs_top);

  // Paper: RMSE over everything 45-200%; over the top-20% subset
  // below 10%. Require the qualitative gap and a small top-RMSE.
  EXPECT_LT(rmse_top, 0.15) << "top-performer RMSE too large";
  EXPECT_GT(rmse_all, 2.0 * rmse_top)
      << "model should look bad globally, good near the top";
}

TEST(ValidationShape, TopPerformersCorrelateStrongly) {
  // As in Fig. 3: pool several problem sizes, then look at the
  // correlation over the top-performing points only.
  const auto& def = get_stencil(StencilKind::kJacobi2D);
  std::vector<double> pred_top;
  std::vector<double> obs_top;
  for (const std::int64_t T : {256, 512, 1024}) {
    const ProblemSize p{.dim = 2, .S = {2048, 2048, 0}, .T = T};
    const SweepData data = run_sweep(gpusim::gtx980(), def, p);
    const auto top = indices_within_of_max(data.gflops, 0.20);
    ASSERT_GE(top.size(), 3u);
    for (const std::size_t i : top) {
      pred_top.push_back(data.predicted[i]);
      obs_top.push_back(data.observed[i]);
    }
  }
  EXPECT_GT(pearson(pred_top, obs_top), 0.9);
}

TEST(ValidationShape, BestTileDoesNotMaximizeFootprint) {
  // Section 7, "revisiting conventional wisdom": the best measured
  // tile should not be the one with the largest shared-memory
  // footprint.
  const auto& def = get_stencil(StencilKind::kHeat2D);
  const ProblemSize p{.dim = 2, .S = {2048, 2048, 0}, .T = 512};
  const model::ModelInputs in = gpusim::calibrate_model(gpusim::gtx980(), def);
  tuner::EnumOptions opt;
  opt.tT_max = 24;
  opt.tS1_max = 40;
  opt.tS1_step = 4;
  opt.tS2_max = 384;
  const auto tiles = tuner::enumerate_feasible(2, in.hw, opt);

  double best_time = 1e300;
  std::int64_t best_words = 0;
  std::int64_t max_words = 0;
  const hhc::ThreadConfig thr{.n1 = 32, .n2 = 8, .n3 = 1};
  for (std::size_t i = 0; i < tiles.size(); i += 2) {
    const auto res =
        gpusim::measure_best_of(gpusim::gtx980(), def, p, tiles[i], thr);
    if (!res.feasible) continue;
    const std::int64_t words = hhc::shared_words_per_tile(2, tiles[i]);
    max_words = std::max(max_words, words);
    if (res.seconds < best_time) {
      best_time = res.seconds;
      best_words = words;
    }
  }
  ASSERT_GT(max_words, 0);
  EXPECT_LT(best_words, max_words);
}

}  // namespace
}  // namespace repro
