// Property tests tying the model's counting formulas to the exact
// tiling geometry and establishing the qualitative behaviours the
// paper relies on (monotonicity in problem size, optimism near the
// geometry, sensitivity to tile sizes).
#include <gtest/gtest.h>

#include <cmath>

#include "common/math_util.hpp"
#include "gpusim/device.hpp"
#include "hhc/hex_schedule.hpp"
#include "model/talg.hpp"

namespace repro::model {
namespace {

ModelInputs test_inputs() {
  ModelInputs in;
  in.hw = gpusim::gtx980().to_model_hardware();
  in.mb.L_s_per_word = l_per_word_from_s_per_gb(7.36e-3);
  in.mb.tau_sync = 7.96e-10;
  in.mb.T_sync = 9.24e-7;
  in.c_iter = 3.39e-8;
  return in;
}

struct SizeParam {
  std::int64_t T;
  std::int64_t S;
  std::int64_t tT;
  std::int64_t tS1;
};

class ModelVsGeometry : public ::testing::TestWithParam<SizeParam> {};

TEST_P(ModelVsGeometry, WavefrontCountWithinEpsilon) {
  const auto [T, S, tT, tS1] = GetParam();
  const hhc::HexSchedule sched(T, S, tT, tS1);
  const double model_nw = 2.0 * std::ceil(static_cast<double>(T) /
                                          static_cast<double>(tT));
  EXPECT_NEAR(static_cast<double>(sched.num_rows()), model_nw, 1.0);
}

TEST_P(ModelVsGeometry, WavefrontWidthWithinEpsilon) {
  const auto [T, S, tT, tS1] = GetParam();
  const hhc::HexSchedule sched(T, S, tT, tS1);
  const double model_w = std::ceil(static_cast<double>(S) /
                                   static_cast<double>(2 * tS1 + tT));
  for (std::int64_t r = 0; r < sched.num_rows(); ++r) {
    EXPECT_NEAR(static_cast<double>(sched.tiles_in_row(r)), model_w, 1.0);
  }
}

TEST_P(ModelVsGeometry, InteriorFootprintWithinConstantOfEqn7) {
  const auto [T, S, tT, tS1] = GetParam();
  const hhc::HexSchedule sched(T, S, tT, tS1);
  const std::int64_t model_mi = tS1 + 2 * tT;  // Eqn 7
  for (std::int64_t r = 0; r < sched.num_rows(); ++r) {
    for (std::int64_t q = sched.q_begin(r); q < sched.q_end(r); ++q) {
      if (!sched.is_interior(r, q)) continue;
      const std::int64_t exact = sched.shape(r, q).input_footprint();
      EXPECT_LE(std::llabs(exact - model_mi), 2);
      return;  // one interior tile suffices
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ModelVsGeometry,
    ::testing::Values(SizeParam{64, 512, 4, 8}, SizeParam{100, 300, 10, 3},
                      SizeParam{17, 90, 2, 5}, SizeParam{33, 1000, 8, 16},
                      SizeParam{128, 128, 16, 2}, SizeParam{9, 77, 6, 6}));

TEST(ModelProperty, TalgScalesLinearlyWithT) {
  // Doubling T roughly doubles predicted time (same tiles).
  const ModelInputs in = test_inputs();
  const hhc::TileSizes ts{.tT = 8, .tS1 = 16, .tS2 = 32, .tS3 = 1};
  const stencil::ProblemSize p1{.dim = 2, .S = {2048, 2048, 0}, .T = 1024};
  const stencil::ProblemSize p2{.dim = 2, .S = {2048, 2048, 0}, .T = 2048};
  const double t1 = talg(in, p1, ts, 2).talg;
  const double t2 = talg(in, p2, ts, 2).talg;
  EXPECT_NEAR(t2 / t1, 2.0, 0.05);
}

TEST(ModelProperty, TalgDecreasesWithMoreSMs) {
  ModelInputs in = test_inputs();
  const hhc::TileSizes ts{.tT = 8, .tS1 = 16, .tS2 = 32, .tS3 = 1};
  const stencil::ProblemSize p{.dim = 2, .S = {4096, 4096, 0}, .T = 1024};
  const double t16 = talg(in, p, ts, 2).talg;
  in.hw.n_sm = 24;
  const double t24 = talg(in, p, ts, 2).talg;
  EXPECT_LT(t24, t16);
}

TEST(ModelProperty, TalgVariesSubstantiallyWithTileSizes) {
  // Fig. 4's premise: tile size choice matters (orders of variation).
  const ModelInputs in = test_inputs();
  const stencil::ProblemSize p{.dim = 2, .S = {4096, 4096, 0}, .T = 1024};
  double best = 1e300;
  double worst = 0.0;
  for (std::int64_t tT : {2, 4, 8, 16, 32}) {
    for (std::int64_t tS1 : {1, 4, 16, 64}) {
      for (std::int64_t tS2 : {32, 128, 384}) {
        const hhc::TileSizes ts{.tT = tT, .tS1 = tS1, .tS2 = tS2, .tS3 = 1};
        if (!tile_fits(2, ts, in.hw)) continue;
        const double t = talg_auto_k(in, p, ts).talg;
        best = std::min(best, t);
        worst = std::max(worst, t);
      }
    }
  }
  EXPECT_GT(worst / best, 1.5);
}

TEST(ModelProperty, ComputeTermDominatesForLargeTimeTiles) {
  // Time tiling makes stencils compute bound: for generous tT the
  // compute term c must exceed the transfer term m'.
  const ModelInputs in = test_inputs();
  const stencil::ProblemSize p{.dim = 2, .S = {4096, 4096, 0}, .T = 1024};
  const hhc::TileSizes ts{.tT = 16, .tS1 = 24, .tS2 = 64, .tS3 = 1};
  const TalgBreakdown b = talg(in, p, ts, 2);
  EXPECT_GT(b.c, b.m_prime);
}

TEST(ModelProperty, BreakdownFieldsArePositive) {
  const ModelInputs in = test_inputs();
  const stencil::ProblemSize p{.dim = 3, .S = {384, 384, 384}, .T = 128};
  const hhc::TileSizes ts{.tT = 4, .tS1 = 4, .tS2 = 8, .tS3 = 8};
  const TalgBreakdown b = talg(in, p, ts, 2);
  EXPECT_GT(b.nw, 0.0);
  EXPECT_GT(b.w, 0.0);
  EXPECT_GT(b.m_prime, 0.0);
  EXPECT_GT(b.c, 0.0);
  EXPECT_GT(b.t_tile, 0.0);
  EXPECT_GT(b.talg, 0.0);
  EXPECT_GT(b.n_subtiles, 1);
}

}  // namespace
}  // namespace repro::model
