// The radius-generalized model terms (Section 7 "Generality": "the
// slopes of the hexagons change by constant factors, the memory
// footprints change similarly").
#include <gtest/gtest.h>

#include <cmath>

#include "gpusim/device.hpp"
#include "model/talg.hpp"

namespace repro::model {
namespace {

ModelInputs inputs_r2() {
  ModelInputs in;
  in.hw = gpusim::gtx980().to_model_hardware();
  in.mb.L_s_per_word = l_per_word_from_s_per_gb(7.36e-3);
  in.mb.tau_sync = 8e-10;
  in.mb.T_sync = 9.2e-7;
  in.c_iter = 5e-8;
  in.radius = 2;
  in.geometry = TileGeometryMode::kPaperExact;
  return in;
}

TEST(RadiusModel, WavefrontWidthUsesGeneralizedPitch) {
  const ModelInputs in = inputs_r2();
  const stencil::ProblemSize p{.dim = 2, .S = {4096, 4096, 0}, .T = 512};
  const hhc::TileSizes ts{.tT = 8, .tS1 = 16, .tS2 = 64, .tS3 = 1};
  const TalgBreakdown b = talg(in, p, ts, 1);
  // w = ceil(S1 / (2 tS1 + r tT)) = ceil(4096 / 48).
  EXPECT_DOUBLE_EQ(b.w, std::ceil(4096.0 / 48.0));
  // w_tile = tS1 + r (tT - 2) = 16 + 12.
  EXPECT_DOUBLE_EQ(b.w_tile, 28.0);
}

TEST(RadiusModel, SubtileCountUsesGeneralizedOverhang) {
  const ModelInputs in = inputs_r2();
  const stencil::ProblemSize p{.dim = 2, .S = {1024, 1024, 0}, .T = 128};
  const hhc::TileSizes ts{.tT = 4, .tS1 = 8, .tS2 = 32, .tS3 = 1};
  const TalgBreakdown b = talg(in, p, ts, 1);
  // n_sub = ceil((S2 + r tT) / tS2) = ceil(1032 / 32) = 33.
  EXPECT_EQ(b.n_subtiles, 33);
}

TEST(RadiusModel, TransferVolumeScalesWithRadius) {
  ModelInputs r1 = inputs_r2();
  r1.radius = 1;
  const ModelInputs r2 = inputs_r2();
  const stencil::ProblemSize p{.dim = 2, .S = {1024, 1024, 0}, .T = 128};
  const hhc::TileSizes ts{.tT = 4, .tS1 = 8, .tS2 = 32, .tS3 = 1};
  // m' = 2 inner (tS1 + 2 r tT) L + 2 tau: the radius-2 variant moves
  // (8 + 16)/(8 + 8) more data per sub-prism.
  const double m1 = talg(r1, p, ts, 1).m_prime - 2.0 * r1.mb.tau_sync;
  const double m2 = talg(r2, p, ts, 1).m_prime - 2.0 * r2.mb.tau_sync;
  EXPECT_NEAR(m2 / m1, (8.0 + 2.0 * 2 * 4) / (8.0 + 2.0 * 4), 1e-12);
}

TEST(RadiusModel, KMaxShrinksWithRadius) {
  const HardwareParams hw = gpusim::gtx980().to_model_hardware();
  const hhc::TileSizes ts{.tT = 8, .tS1 = 16, .tS2 = 64, .tS3 = 1};
  EXPECT_GT(k_max(2, ts, hw, 1), k_max(2, ts, hw, 2));
}

TEST(RadiusModel, HigherRadiusPredictsSlowerSameTiles) {
  // More halo traffic and fatter row sums: a radius-2 stencil with the
  // same C_iter must never be predicted faster than radius-1.
  ModelInputs r1 = inputs_r2();
  r1.radius = 1;
  const ModelInputs r2 = inputs_r2();
  const stencil::ProblemSize p{.dim = 2, .S = {2048, 2048, 0}, .T = 256};
  const hhc::TileSizes ts{.tT = 8, .tS1 = 16, .tS2 = 64, .tS3 = 1};
  // Note: larger radius also means fewer, wider tiles; compare at
  // equal k to isolate the geometry terms.
  EXPECT_GE(talg(r2, p, ts, 2).c, talg(r1, p, ts, 2).c);
  EXPECT_GE(talg(r2, p, ts, 2).m_prime, talg(r1, p, ts, 2).m_prime);
}

}  // namespace
}  // namespace repro::model
