#include "model/talg.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/math_util.hpp"
#include "gpusim/device.hpp"
#include "hhc/footprint.hpp"

namespace repro::model {
namespace {

ModelInputs test_inputs() {
  ModelInputs in;
  in.hw = gpusim::gtx980().to_model_hardware();
  in.mb.L_s_per_word = l_per_word_from_s_per_gb(7.36e-3);
  in.mb.tau_sync = 7.96e-10;
  in.mb.T_sync = 9.24e-7;
  in.c_iter = 3.39e-8;  // Table 4, Jacobi2D on GTX 980
  // This file pins the equations exactly as printed in the paper.
  in.geometry = TileGeometryMode::kPaperExact;
  return in;
}

TEST(Talg, UnitConversionRoundTrips) {
  const double per_word = l_per_word_from_s_per_gb(7.36e-3);
  EXPECT_NEAR(l_s_per_gb_from_per_word(per_word), 7.36e-3, 1e-15);
  // 4 bytes per word out of 1e9 bytes.
  EXPECT_NEAR(per_word, 7.36e-3 * 4.0 / 1e9, 1e-18);
}

TEST(Talg, KMaxHonorsSharedMemoryAndBlockLimit) {
  const ModelInputs in = test_inputs();
  // Tiny tile: k capped by MTB_SM.
  const hhc::TileSizes tiny{.tT = 2, .tS1 = 2, .tS2 = 32, .tS3 = 1};
  EXPECT_EQ(k_max(2, tiny, in.hw), in.hw.max_tb_per_sm);
  // A tile sized near the 48 KB block limit: k = 2 (96/48).
  // M_tile words = 2*(tS1+tT+1)(tS2+tT+1) near 12288 words = 48 KB.
  const hhc::TileSizes big{.tT = 6, .tS1 = 25, .tS2 = 185, .tS3 = 1};
  const std::int64_t words = hhc::shared_words_per_tile(2, big);
  ASSERT_LE(words, in.hw.max_shared_words_per_block);
  ASSERT_GT(words, in.hw.max_shared_words_per_block / 2);
  EXPECT_EQ(k_max(2, big, in.hw), 2);
  // Over the block limit: infeasible.
  const hhc::TileSizes huge{.tT = 8, .tS1 = 64, .tS2 = 512, .tS3 = 1};
  EXPECT_EQ(k_max(2, huge, in.hw), 0);
  EXPECT_FALSE(tile_fits(2, huge, in.hw));
}

TEST(Talg, MatchesHandComputedJacobi1D) {
  // Hand-evaluate Eqns 3-12 for a small instance and compare.
  ModelInputs in = test_inputs();
  in.c_iter = 1e-8;
  const stencil::ProblemSize p{.dim = 1, .S = {1024, 0, 0}, .T = 64};
  const hhc::TileSizes ts{.tT = 8, .tS1 = 16, .tS2 = 1, .tS3 = 1};
  const std::int64_t k = 1;

  const double nw = 2.0 * std::ceil(64.0 / 8.0);            // 16
  const std::int64_t w = repro::ceil_div<std::int64_t>(1024, 2 * 16 + 8);
  const double m_prime =
      2.0 * (16 + 2 * 8) * in.mb.L_s_per_word + 2.0 * in.mb.tau_sync;
  double row_sum = 0.0;
  for (std::int64_t x = 16; x <= 16 + 8 - 2; x += 2) {
    row_sum += std::ceil(static_cast<double>(x) / 128.0);
  }
  const double c = 2.0 * in.c_iter * row_sum + 8.0 * in.mb.tau_sync;
  const double t_tile = m_prime + c;
  const double waves =
      std::ceil(std::ceil(static_cast<double>(w) / 1.0) / 16.0);
  const double expect = nw * in.mb.T_sync + nw * t_tile * waves;

  const TalgBreakdown got = talg(in, p, ts, k);
  EXPECT_NEAR(got.talg, expect, expect * 1e-12);
  EXPECT_DOUBLE_EQ(got.nw, nw);
  EXPECT_DOUBLE_EQ(got.w, static_cast<double>(w));
  EXPECT_NEAR(got.m_prime, m_prime, 1e-18);
  EXPECT_NEAR(got.c, c, 1e-18);
}

TEST(Talg, HyperthreadingOverlapsTransfersEqn12) {
  const ModelInputs in = test_inputs();
  const stencil::ProblemSize p{.dim = 1, .S = {4096, 0, 0}, .T = 128};
  const hhc::TileSizes ts{.tT = 8, .tS1 = 32, .tS2 = 1, .tS3 = 1};
  const TalgBreakdown k1 = talg(in, p, ts, 1);
  const TalgBreakdown k2 = talg(in, p, ts, 2);
  // Eqn 12: Ttile(2) = m' + c + max(m', c).
  EXPECT_NEAR(k2.t_tile, k1.m_prime + k1.c + std::max(k1.m_prime, k1.c),
              1e-15);
}

TEST(Talg, TwoDStructureMatchesEqn16) {
  const ModelInputs in = test_inputs();
  const stencil::ProblemSize p{.dim = 2, .S = {4096, 4096, 0}, .T = 1024};
  const hhc::TileSizes ts{.tT = 8, .tS1 = 16, .tS2 = 64, .tS3 = 1};
  const std::int64_t n_sub = repro::ceil_div<std::int64_t>(4096 + 8, 64);

  const TalgBreakdown k1 = talg(in, p, ts, 1);
  EXPECT_EQ(k1.n_subtiles, n_sub);
  EXPECT_NEAR(k1.t_tile, (k1.m_prime + k1.c) * static_cast<double>(n_sub),
              k1.t_tile * 1e-12);

  const TalgBreakdown k3 = talg(in, p, ts, 3);
  EXPECT_NEAR(k3.t_tile,
              k3.m_prime + 3.0 * std::max(k3.m_prime, k3.c) *
                               static_cast<double>(n_sub),
              k3.t_tile * 1e-12);
}

TEST(Talg, ThreeDSubSlabCountMatchesEqn23) {
  const ModelInputs in = test_inputs();
  const stencil::ProblemSize p{.dim = 3, .S = {384, 384, 384}, .T = 128};
  const hhc::TileSizes ts{.tT = 4, .tS1 = 4, .tS2 = 16, .tS3 = 8};
  const TalgBreakdown b = talg(in, p, ts, 1);
  const double expect = std::ceil((384.0 + 4.0) / 16.0 * (384.0 + 4.0) / 8.0);
  EXPECT_EQ(static_cast<double>(b.n_subtiles), expect);
}

TEST(Talg, AutoKMinimizesOverFeasibleRange) {
  const ModelInputs in = test_inputs();
  const stencil::ProblemSize p{.dim = 2, .S = {4096, 4096, 0}, .T = 1024};
  const hhc::TileSizes ts{.tT = 4, .tS1 = 8, .tS2 = 32, .tS3 = 1};
  const TalgBreakdown b = talg_auto_k(in, p, ts);
  const std::int64_t k_hi = k_max(2, ts, in.hw);
  EXPECT_GE(b.k, 1);
  EXPECT_LE(b.k, k_hi);
  for (std::int64_t k = 1; k <= k_hi; ++k) {
    EXPECT_LE(b.talg, talg(in, p, ts, k).talg);
  }
}

TEST(Talg, AutoKThrowsWhenInfeasible) {
  const ModelInputs in = test_inputs();
  const stencil::ProblemSize p{.dim = 2, .S = {4096, 4096, 0}, .T = 1024};
  const hhc::TileSizes huge{.tT = 32, .tS1 = 64, .tS2 = 512, .tS3 = 1};
  EXPECT_THROW(talg_auto_k(in, p, huge), std::invalid_argument);
}

TEST(Talg, ClosedFormNeverExceedsExact) {
  ModelInputs exact = test_inputs();
  ModelInputs closed = test_inputs();
  closed.row_sum = RowSumMode::kClosedForm;
  const stencil::ProblemSize p{.dim = 2, .S = {2048, 2048, 0}, .T = 512};
  for (std::int64_t tT : {2, 8, 16}) {
    for (std::int64_t tS1 : {4, 16, 40}) {
      const hhc::TileSizes ts{.tT = tT, .tS1 = tS1, .tS2 = 32, .tS3 = 1};
      if (!tile_fits(2, ts, exact.hw)) continue;
      EXPECT_LE(talg(closed, p, ts, 2).talg, talg(exact, p, ts, 2).talg);
    }
  }
}

TEST(Talg, RejectsInvalidTileSizes) {
  const ModelInputs in = test_inputs();
  const stencil::ProblemSize p{.dim = 2, .S = {128, 128, 0}, .T = 16};
  EXPECT_THROW(talg(in, p, {.tT = 3, .tS1 = 4, .tS2 = 32, .tS3 = 1}, 1),
               std::invalid_argument);
  EXPECT_THROW(talg(in, p, {.tT = 4, .tS1 = 0, .tS2 = 32, .tS3 = 1}, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace repro::model
