// The warm-start similarity index: entry extraction from stored
// payloads, append/load round-trips, corruption tolerance (truncated
// and wrong-version lines skipped, entries without a backing store
// file dropped), rebuild from the store directory alone, and the
// log-distance neighbor ranking the service seeds sweeps from.
#include "service/index.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "service/store.hpp"

namespace repro::service {
namespace {

namespace fs = std::filesystem;

std::string best_tile_key(int s, std::int64_t t = 64) {
  const std::string ss = std::to_string(s);
  return "{\"device\":\"GTX 980\",\"kind\":\"best_tile\",\"problem\":"
         "{\"S\":[" + ss + "," + ss + "],\"T\":" + std::to_string(t) +
         "},\"stencil\":\"Heat2D\",\"v\":1}";
}

std::string best_tile_payload(double texec = 1.5e-4) {
  return "{\"space_size\":10,\"candidates_tried\":3,\"talg_min\":1e-4,"
         "\"argmin\":{\"tT\":8,\"tS1\":4,\"tS2\":64,\"tS3\":1},"
         "\"best\":{\"tile\":{\"tT\":8,\"tS1\":4,\"tS2\":64,\"tS3\":1},"
         "\"threads\":{\"n1\":32,\"n2\":4,\"n3\":1},\"feasible\":true,"
         "\"talg\":1e-4,\"texec\":" + std::to_string(texec) +
         ",\"gflops\":350.0}}";
}

class IndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "repro_index_test";
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  // Index entries describe the store, so a live entry needs a backing
  // store file under the same key.
  void back(const std::string& key, const std::string& payload) {
    ResultStore store(dir_.string());
    ASSERT_TRUE(store.save(key, payload));
  }

  fs::path dir_;
};

TEST_F(IndexTest, EntryFromBestTilePayload) {
  const std::optional<IndexEntry> e =
      SimilarityIndex::entry_from(best_tile_key(512), best_tile_payload());
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->kind, "best_tile");
  EXPECT_EQ(e->device, "GTX 980");
  EXPECT_EQ(e->stencil_name, "Heat2D");
  EXPECT_TRUE(e->stencil_text.empty());
  EXPECT_EQ(e->problem.dim, 2);
  EXPECT_EQ(e->problem.S[0], 512);
  EXPECT_EQ(e->problem.T, 64);
  EXPECT_EQ(e->tile.tT, 8);
  EXPECT_EQ(e->tile.tS2, 64);
  EXPECT_EQ(e->threads.n1, 32);
  EXPECT_EQ(e->variant, stencil::KernelVariant{});
  EXPECT_DOUBLE_EQ(e->texec, 1.5e-4);
}

TEST_F(IndexTest, EntryFromPredictPayloadCarriesVariant) {
  const std::string key =
      "{\"device\":\"GTX 980\",\"kind\":\"predict\",\"problem\":"
      "{\"S\":[512,512],\"T\":64},\"stencil\":\"Heat2D\","
      "\"tile\":{\"tT\":6,\"tS1\":8,\"tS2\":160},\"v\":1}";
  const std::string payload =
      "{\"tile\":{\"tT\":6,\"tS1\":8,\"tS2\":160,\"tS3\":1},"
      "\"threads\":{\"n1\":32,\"n2\":4,\"n3\":1},"
      "\"variant\":{\"unroll\":2,\"staging\":\"register\"},"
      "\"feasible\":true,\"talg\":1e-4,\"texec\":2e-4,\"gflops\":300.0}";
  const std::optional<IndexEntry> e = SimilarityIndex::entry_from(key, payload);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->kind, "predict");
  EXPECT_EQ(e->variant.unroll, 2);
  EXPECT_EQ(e->variant.staging, stencil::Staging::kRegister);
}

TEST_F(IndexTest, UnseedablePayloadsYieldNoEntry) {
  // A lint result has no tuned point.
  const std::string lint_key =
      "{\"audit\":false,\"device\":\"GTX 980\",\"kind\":\"lint\","
      "\"problem\":{\"S\":[512,512],\"T\":64},\"stencil\":\"Heat2D\",\"v\":1}";
  EXPECT_FALSE(SimilarityIndex::entry_from(
                   lint_key, "{\"ok\":true,\"diagnostics\":[]}")
                   .has_value());
  // A best_tile whose space produced no feasible point.
  EXPECT_FALSE(SimilarityIndex::entry_from(
                   best_tile_key(512),
                   "{\"space_size\":0,\"candidates_tried\":0,"
                   "\"talg_min\":null,\"argmin\":null,\"best\":null}")
                   .has_value());
  // An infeasible predict.
  const std::string pkey =
      "{\"device\":\"GTX 980\",\"kind\":\"predict\",\"problem\":"
      "{\"S\":[512,512],\"T\":64},\"stencil\":\"Heat2D\","
      "\"tile\":{\"tT\":6,\"tS1\":8,\"tS2\":160},\"v\":1}";
  EXPECT_FALSE(SimilarityIndex::entry_from(
                   pkey,
                   "{\"tile\":{\"tT\":6,\"tS1\":8,\"tS2\":160,\"tS3\":1},"
                   "\"feasible\":false,\"talg\":null}")
                   .has_value());
  // Garbage in either half.
  EXPECT_FALSE(SimilarityIndex::entry_from("not json", "{}").has_value());
  EXPECT_FALSE(
      SimilarityIndex::entry_from(best_tile_key(512), "not json").has_value());
}

TEST_F(IndexTest, AppendLoadRoundTrip) {
  const std::string key = best_tile_key(512);
  const std::string payload = best_tile_payload();
  back(key, payload);

  SimilarityIndex index(dir_.string());
  const std::optional<IndexEntry> e = SimilarityIndex::entry_from(key, payload);
  ASSERT_TRUE(e.has_value());
  ASSERT_TRUE(index.append(*e));

  const std::vector<IndexEntry> live = index.load();
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(live[0].key, key);
  EXPECT_EQ(live[0].tile, e->tile);
  EXPECT_EQ(live[0].threads, e->threads);
  EXPECT_EQ(live[0].variant, e->variant);
  EXPECT_DOUBLE_EQ(live[0].texec, e->texec);
  EXPECT_EQ(index.counters().appends, 1u);
  EXPECT_EQ(index.counters().skipped, 0u);
  EXPECT_EQ(index.counters().stale, 0u);
}

TEST_F(IndexTest, LaterLineSupersedesEarlierForSameKey) {
  const std::string key = best_tile_key(512);
  back(key, best_tile_payload());
  SimilarityIndex index(dir_.string());
  std::optional<IndexEntry> e =
      SimilarityIndex::entry_from(key, best_tile_payload(1.0e-4));
  ASSERT_TRUE(index.append(*e));
  e = SimilarityIndex::entry_from(key, best_tile_payload(9.0e-5));
  ASSERT_TRUE(index.append(*e));

  const std::vector<IndexEntry> live = index.load();
  ASSERT_EQ(live.size(), 1u);
  EXPECT_DOUBLE_EQ(live[0].texec, 9.0e-5);
}

TEST_F(IndexTest, StaleEntryWithoutStoreFileIsDropped) {
  // Appended, but the backing store file never existed.
  SimilarityIndex index(dir_.string());
  const std::optional<IndexEntry> e =
      SimilarityIndex::entry_from(best_tile_key(512), best_tile_payload());
  ASSERT_TRUE(index.append(*e));
  EXPECT_TRUE(index.load().empty());
  EXPECT_EQ(index.counters().stale, 1u);
}

TEST_F(IndexTest, CorruptAndWrongVersionLinesAreSkipped) {
  const std::string key = best_tile_key(512);
  back(key, best_tile_payload());
  SimilarityIndex index(dir_.string());
  const std::optional<IndexEntry> e =
      SimilarityIndex::entry_from(key, best_tile_payload());
  ASSERT_TRUE(index.append(*e));

  {
    // Simulated tail corruption and a future-version line.
    std::ofstream out(index.path(), std::ios::binary | std::ios::app);
    out << "{\"index_version\":99,\"key\":\"k\"}\n"
        << "not json at all\n"
        << "{\"index_version\":1,\"key\":\"trunc";  // no newline: torn write
  }

  const std::vector<IndexEntry> live = index.load();
  ASSERT_EQ(live.size(), 1u);
  EXPECT_EQ(live[0].key, key);
  EXPECT_EQ(index.counters().skipped, 3u);
}

TEST_F(IndexTest, MissingIndexLoadsEmptyAndRebuildRecreatesIt) {
  // Two seedable results plus one unseedable, written only via the
  // store — the index file does not exist yet.
  ResultStore store(dir_.string());
  ASSERT_TRUE(store.save(best_tile_key(512), best_tile_payload(1.0e-4)));
  ASSERT_TRUE(store.save(best_tile_key(480), best_tile_payload(2.0e-4)));
  const std::string lint_key =
      "{\"audit\":false,\"device\":\"GTX 980\",\"kind\":\"lint\","
      "\"problem\":{\"S\":[512,512],\"T\":64},\"stencil\":\"Heat2D\",\"v\":1}";
  ASSERT_TRUE(store.save(lint_key, "{\"ok\":true,\"diagnostics\":[]}"));

  SimilarityIndex index(dir_.string());
  EXPECT_TRUE(index.load().empty());

  const std::optional<std::size_t> n = index.rebuild();
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(*n, 2u);
  const std::vector<IndexEntry> live = index.load();
  ASSERT_EQ(live.size(), 2u);
  // And a second rebuild round-trips to the same file.
  SimilarityIndex again(dir_.string());
  ASSERT_TRUE(again.rebuild().has_value());
  EXPECT_EQ(again.load().size(), 2u);
}

TEST_F(IndexTest, NeighborsRankByLogDistanceAndFilterIdentity) {
  SimilarityIndex index(dir_.string());
  for (const int s : {256, 512, 1024}) {
    const std::string key = best_tile_key(s);
    back(key, best_tile_payload());
    const std::optional<IndexEntry> e =
        SimilarityIndex::entry_from(key, best_tile_payload());
    ASSERT_TRUE(index.append(*e));
  }
  // A different device and a different stencil must never seed.
  {
    std::string other =
        "{\"device\":\"Tesla K40\",\"kind\":\"best_tile\",\"problem\":"
        "{\"S\":[500,500],\"T\":64},\"stencil\":\"Heat2D\",\"v\":1}";
    back(other, best_tile_payload());
    ASSERT_TRUE(index.append(
        *SimilarityIndex::entry_from(other, best_tile_payload())));
    other =
        "{\"device\":\"GTX 980\",\"kind\":\"best_tile\",\"problem\":"
        "{\"S\":[500,500],\"T\":64},\"stencil\":\"Jacobi2D\",\"v\":1}";
    back(other, best_tile_payload());
    ASSERT_TRUE(index.append(
        *SimilarityIndex::entry_from(other, best_tile_payload())));
  }

  // Query 500^2: |ln(500/512)| < |ln(500/256)| < |ln(500/1024)|.
  const stencil::ProblemSize q{.dim = 2, .S = {500, 500, 0}, .T = 64};
  const std::vector<SimilarityIndex::Neighbor> near = index.neighbors(
      "GTX 980", "Heat2D", "", q, stencil::KernelVariant{}, 8);
  ASSERT_EQ(near.size(), 3u);
  EXPECT_EQ(near[0].entry.problem.S[0], 512);
  EXPECT_EQ(near[1].entry.problem.S[0], 256);
  EXPECT_EQ(near[2].entry.problem.S[0], 1024);
  EXPECT_LT(near[0].distance, near[1].distance);
  EXPECT_LT(near[1].distance, near[2].distance);

  // The cap truncates after ranking; an identical problem is a
  // legitimate distance-0 neighbor.
  const std::vector<SimilarityIndex::Neighbor> capped = index.neighbors(
      "GTX 980", "Heat2D", "", q, stencil::KernelVariant{}, 1);
  ASSERT_EQ(capped.size(), 1u);
  EXPECT_EQ(capped[0].entry.problem.S[0], 512);
  const stencil::ProblemSize exact{.dim = 2, .S = {512, 512, 0}, .T = 64};
  const std::vector<SimilarityIndex::Neighbor> self = index.neighbors(
      "GTX 980", "Heat2D", "", exact, stencil::KernelVariant{}, 1);
  ASSERT_EQ(self.size(), 1u);
  EXPECT_EQ(self[0].distance, 0.0);

  // Dimensionality is part of the identity: a 1D query sees nothing.
  const stencil::ProblemSize q1{.dim = 1, .S = {500, 0, 0}, .T = 64};
  EXPECT_TRUE(index
                  .neighbors("GTX 980", "Heat2D", "", q1,
                             stencil::KernelVariant{}, 8)
                  .empty());
}

TEST_F(IndexTest, NeighborsPreferSameVariantBeforeDistance) {
  SimilarityIndex index(dir_.string());
  // A default-variant best_tile at 256^2 (far from the 500^2 query)
  // and a register-staged predict at 512^2 (near).
  {
    const std::string key = best_tile_key(256);
    back(key, best_tile_payload());
    ASSERT_TRUE(
        index.append(*SimilarityIndex::entry_from(key, best_tile_payload())));
  }
  const std::string pkey =
      "{\"device\":\"GTX 980\",\"kind\":\"predict\",\"problem\":"
      "{\"S\":[512,512],\"T\":64},\"stencil\":\"Heat2D\","
      "\"tile\":{\"tT\":6,\"tS1\":8,\"tS2\":160},"
      "\"variant\":{\"unroll\":2,\"staging\":\"register\"},\"v\":1}";
  const std::string ppayload =
      "{\"tile\":{\"tT\":6,\"tS1\":8,\"tS2\":160,\"tS3\":1},"
      "\"threads\":{\"n1\":32,\"n2\":4,\"n3\":1},"
      "\"variant\":{\"unroll\":2,\"staging\":\"register\"},"
      "\"feasible\":true,\"talg\":1e-4,\"texec\":2e-4,\"gflops\":300.0}";
  back(pkey, ppayload);
  ASSERT_TRUE(index.append(*SimilarityIndex::entry_from(pkey, ppayload)));

  // A default-variant query ranks the matching (default) entry first
  // even though the register-staged one is nearer in problem space —
  // an out-of-span seed would be rejected in-space and waste its
  // slot. The other-variant entry still ranks as the fallback.
  const stencil::ProblemSize q{.dim = 2, .S = {500, 500, 0}, .T = 64};
  const std::vector<SimilarityIndex::Neighbor> def = index.neighbors(
      "GTX 980", "Heat2D", "", q, stencil::KernelVariant{}, 8);
  ASSERT_EQ(def.size(), 2u);
  EXPECT_EQ(def[0].entry.problem.S[0], 256);
  EXPECT_EQ(def[0].entry.variant, stencil::KernelVariant{});
  EXPECT_EQ(def[1].entry.problem.S[0], 512);
  EXPECT_GT(def[0].distance, def[1].distance);  // variant outranks distance

  // Querying for the register-staged variant flips the order.
  const stencil::KernelVariant reg{2, stencil::Staging::kRegister};
  const std::vector<SimilarityIndex::Neighbor> rv =
      index.neighbors("GTX 980", "Heat2D", "", q, reg, 8);
  ASSERT_EQ(rv.size(), 2u);
  EXPECT_EQ(rv[0].entry.problem.S[0], 512);
  EXPECT_EQ(rv[0].entry.variant, reg);
  EXPECT_EQ(rv[1].entry.problem.S[0], 256);

  // With the cap at 1, only the same-variant entry survives.
  const std::vector<SimilarityIndex::Neighbor> capped = index.neighbors(
      "GTX 980", "Heat2D", "", q, stencil::KernelVariant{}, 1);
  ASSERT_EQ(capped.size(), 1u);
  EXPECT_EQ(capped[0].entry.variant, stencil::KernelVariant{});
}

}  // namespace
}  // namespace repro::service
