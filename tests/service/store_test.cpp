#include "service/store.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

namespace repro::service {
namespace {

namespace fs = std::filesystem;

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "repro_store_test";
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(StoreTest, MissThenRoundTrip) {
  ResultStore store(dir_.string());
  EXPECT_EQ(store.load("k1"), std::nullopt);
  ASSERT_TRUE(store.save("k1", R"({"talg":0.5})"));
  EXPECT_EQ(store.load("k1"), R"({"talg":0.5})");

  const ResultStore::Counters c = store.counters();
  EXPECT_EQ(c.misses, 1u);
  EXPECT_EQ(c.writes, 1u);
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.errors, 0u);
}

TEST_F(StoreTest, PayloadBytesAreServedVerbatim) {
  ResultStore store(dir_.string());
  // Bytes that would break a sloppy re-serialization: escapes, UTF-8,
  // shortest-form doubles.
  const std::string payload =
      "{\"msg\":\"a\\\"b\\\\c\\nd\",\"x\":0.0007004603049460344,\"u\":\"é\"}";
  ASSERT_TRUE(store.save("k", payload));
  EXPECT_EQ(store.load("k"), payload);
}

TEST_F(StoreTest, EntriesSurviveReopen) {
  {
    ResultStore store(dir_.string());
    ASSERT_TRUE(store.save("persist", "42"));
  }
  ResultStore reopened(dir_.string());
  EXPECT_EQ(reopened.load("persist"), "42");
}

TEST_F(StoreTest, CorruptEntryIsAMissNotACrash) {
  ResultStore store(dir_.string());
  ASSERT_TRUE(store.save("k", "payload"));
  {
    std::ofstream out(store.path_for("k"), std::ios::trunc);
    out << "NOT JSON AT ALL {{{";
  }
  EXPECT_EQ(store.load("k"), std::nullopt);
  EXPECT_GE(store.counters().errors, 1u);
  // A fresh save repairs the entry.
  ASSERT_TRUE(store.save("k", "payload"));
  EXPECT_EQ(store.load("k"), "payload");
}

TEST_F(StoreTest, TruncatedEntryIsAMiss) {
  ResultStore store(dir_.string());
  ASSERT_TRUE(store.save("k", "some payload"));
  std::string contents;
  {
    std::ifstream in(store.path_for("k"));
    std::getline(in, contents);
  }
  {
    std::ofstream out(store.path_for("k"), std::ios::trunc);
    out << contents.substr(0, contents.size() / 2);  // torn write
  }
  EXPECT_EQ(store.load("k"), std::nullopt);
}

TEST_F(StoreTest, WrongVersionIsAMiss) {
  ResultStore store(dir_.string());
  ASSERT_TRUE(store.save("k", "p"));
  {
    std::ofstream out(store.path_for("k"), std::ios::trunc);
    out << R"({"store_version":999,"key":"k","payload":"p"})" << "\n";
  }
  EXPECT_EQ(store.load("k"), std::nullopt);
  EXPECT_GE(store.counters().errors, 1u);
}

TEST_F(StoreTest, KeyMismatchIsAMissNeverAWrongAnswer) {
  ResultStore store(dir_.string());
  ASSERT_TRUE(store.save("k1", "answer-for-k1"));
  // Simulate a hash collision / copied file: the entry under k2's
  // filename holds k1's record.
  fs::copy_file(store.path_for("k1"), store.path_for("k2"));
  EXPECT_EQ(store.load("k2"), std::nullopt);
  EXPECT_EQ(store.load("k1"), "answer-for-k1");
}

TEST_F(StoreTest, NoTempFilesLeftBehind) {
  ResultStore store(dir_.string());
  ASSERT_TRUE(store.save("a", "1"));
  ASSERT_TRUE(store.save("b", "2"));
  for (const auto& entry : fs::directory_iterator(dir_)) {
    EXPECT_EQ(entry.path().extension(), ".json") << entry.path();
  }
}

TEST_F(StoreTest, UnwritableDirectoryDegradesGracefully) {
  ResultStore store("/proc/no-such-dir/store");
  EXPECT_FALSE(store.save("k", "p"));
  EXPECT_EQ(store.load("k"), std::nullopt);
  EXPECT_GE(store.counters().errors, 1u);
}

TEST(Fnv1aHex, MatchesReferenceVectors) {
  // FNV-1a 64-bit reference values.
  EXPECT_EQ(fnv1a_hex(""), "cbf29ce484222325");
  EXPECT_EQ(fnv1a_hex("a"), "af63dc4c8601ec8c");
  EXPECT_EQ(fnv1a_hex("foobar"), "85944171f73967e8");
  EXPECT_EQ(fnv1a_hex("a").size(), 16u);
}

}  // namespace
}  // namespace repro::service
