#include "service/protocol.hpp"

#include <gtest/gtest.h>

#include <string>

namespace repro::service {
namespace {

using analysis::Code;
using analysis::DiagnosticEngine;

constexpr const char* kPredictLine =
    R"({"v":1,"id":"r1","kind":"predict","stencil":"Heat2D",)"
    R"("problem":{"S":[512,512],"T":64},"tile":{"tT":6,"tS1":8,"tS2":160},)"
    R"("threads":{"n1":32,"n2":4}})";

TEST(Protocol, ParsesPredictRequest) {
  DiagnosticEngine diags;
  const auto req = parse_request(kPredictLine, diags);
  ASSERT_TRUE(req) << analysis::render_human(diags.diagnostics());
  EXPECT_EQ(req->id, "r1");
  EXPECT_EQ(req->kind, RequestKind::kPredict);
  EXPECT_EQ(req->device, "GTX 980");
  EXPECT_EQ(req->def.name, "Heat2D");
  ASSERT_TRUE(req->problem);
  EXPECT_EQ(req->problem->dim, 2);
  EXPECT_EQ(req->problem->T, 64);
  ASSERT_TRUE(req->tile);
  EXPECT_EQ(req->tile->tT, 6);
  EXPECT_EQ(req->tile->tS2, 160);
  EXPECT_EQ(req->tile->tS3, 1);  // defaulted
  ASSERT_TRUE(req->threads);
  EXPECT_EQ(req->threads->n1, 32);
}

TEST(Protocol, ParsesInlineDslText) {
  DiagnosticEngine diags;
  const auto req = parse_request(
      R"({"v":1,"kind":"lint","text":)"
      R"("stencil S {\n dim 1\n tap (0) 0.5\n tap (1) 0.25\n tap (-1) 0.25\n}"})",
      diags);
  ASSERT_TRUE(req) << analysis::render_human(diags.diagnostics());
  EXPECT_EQ(req->def.dim, 1);
  EXPECT_EQ(req->def.taps.size(), 3u);
}

TEST(Protocol, InvalidJsonIsSL401) {
  DiagnosticEngine diags;
  std::string id;
  EXPECT_EQ(parse_request("{not json", diags, &id), std::nullopt);
  EXPECT_TRUE(diags.has_code(Code::kSvcMalformed));
}

TEST(Protocol, IdIsRecoveredEvenWhenParsingFails) {
  DiagnosticEngine diags;
  std::string id;
  EXPECT_EQ(parse_request(R"({"v":7,"id":"r9","kind":"predict"})", diags, &id),
            std::nullopt);
  EXPECT_EQ(id, "r9");
  EXPECT_TRUE(diags.has_code(Code::kSvcVersion));
}

TEST(Protocol, UnknownKindIsSL403) {
  DiagnosticEngine diags;
  EXPECT_EQ(
      parse_request(R"({"v":1,"kind":"frobnicate","stencil":"Heat2D"})", diags),
      std::nullopt);
  EXPECT_TRUE(diags.has_code(Code::kSvcUnknownKind));
}

TEST(Protocol, MissingRequiredFieldIsSL404) {
  DiagnosticEngine diags;
  EXPECT_EQ(parse_request(R"({"v":1,"kind":"predict","stencil":"Heat2D"})",
                          diags),
            std::nullopt);
  EXPECT_TRUE(diags.has_code(Code::kSvcMissingField));
}

TEST(Protocol, UnknownFieldIsRejectedNotIgnored) {
  DiagnosticEngine diags;
  EXPECT_EQ(parse_request(
                R"({"v":1,"kind":"best_tile","stencil":"Heat2D",)"
                R"("problem":{"S":[512,512],"T":64},"detla":0.2})",  // typo
                diags),
            std::nullopt);
  EXPECT_TRUE(diags.has_code(Code::kSvcBadField));
}

TEST(Protocol, UnknownDeviceIsStructuredSL522) {
  // The registry redesign: an unknown device reports SL522 with the
  // registered names in the message and a nearest-name hint — not the
  // old bare SL405.
  DiagnosticEngine diags;
  EXPECT_EQ(parse_request(
                R"({"v":1,"kind":"lint","device":"GTX 9999","stencil":"Heat2D"})",
                diags),
            std::nullopt);
  ASSERT_TRUE(diags.has_code(Code::kAuditUnknownDevice));
  const analysis::Diagnostic& d = diags.diagnostics().front();
  EXPECT_NE(d.message.find("GTX 980"), std::string::npos);
  EXPECT_NE(d.message.find("Xeon E5-2690 v4"), std::string::npos);
  EXPECT_NE(d.hint.find("GTX 980"), std::string::npos);
}

TEST(Protocol, UnknownStencilIsSL405) {
  DiagnosticEngine diags;
  EXPECT_EQ(
      parse_request(R"({"v":1,"kind":"lint","stencil":"NoSuchStencil"})",
                    diags),
      std::nullopt);
  EXPECT_TRUE(diags.has_code(Code::kSvcBadField));
}

TEST(Protocol, DevicesKindTakesNoComputationFields) {
  DiagnosticEngine diags;
  const auto req = parse_request(R"({"v":1,"id":"d1","kind":"devices"})", diags);
  ASSERT_TRUE(req) << analysis::render_human(diags.diagnostics());
  EXPECT_EQ(req->kind, RequestKind::kDevices);
  // Its canonical key is {v, kind} alone — no device/stencil identity.
  EXPECT_EQ(req->canonical_key(), R"({"kind":"devices","v":1})");
  // Any computation field is rejected, not ignored.
  diags.clear();
  EXPECT_EQ(parse_request(
                R"({"v":1,"kind":"devices","device":"GTX 980"})", diags),
            std::nullopt);
  EXPECT_TRUE(diags.has_code(Code::kSvcBadField));
}

TEST(Protocol, ProblemDimMustMatchStencilDim) {
  DiagnosticEngine diags;
  EXPECT_EQ(parse_request(
                R"({"v":1,"kind":"best_tile","stencil":"Heat2D",)"
                R"("problem":{"S":[512],"T":64}})",
                diags),
            std::nullopt);
  EXPECT_TRUE(diags.has_code(Code::kSvcBadField));
}

TEST(Protocol, StencilAndTextAreMutuallyExclusive) {
  DiagnosticEngine diags;
  EXPECT_EQ(parse_request(
                R"({"v":1,"kind":"lint","stencil":"Heat2D","text":"x"})",
                diags),
            std::nullopt);
  EXPECT_TRUE(diags.has_code(Code::kSvcMissingField));
  diags.clear();
  EXPECT_EQ(parse_request(R"({"v":1,"kind":"lint"})", diags), std::nullopt);
  EXPECT_TRUE(diags.has_code(Code::kSvcMissingField));
}

TEST(Protocol, BadEnumOptionsSurfaceTunerDiagnostics) {
  DiagnosticEngine diags;
  EXPECT_EQ(parse_request(
                R"({"v":1,"kind":"best_tile","stencil":"Heat2D",)"
                R"("problem":{"S":[512,512],"T":64},"enum":{"tT_max":"wide"}})",
                diags),
            std::nullopt);
  EXPECT_TRUE(diags.has_code(Code::kSvcBadField));
}

// --- Canonical keys ---------------------------------------------------

TEST(CanonicalKey, IgnoresIdAndFieldOrder) {
  DiagnosticEngine diags;
  const auto a = parse_request(kPredictLine, diags);
  const auto b = parse_request(
      R"({"kind":"predict","tile":{"tS2":160,"tS1":8,"tT":6},)"
      R"("problem":{"T":64,"S":[512,512]},"stencil":"Heat2D",)"
      R"("threads":{"n2":4,"n1":32},"id":"totally-different","v":1})",
      diags);
  ASSERT_TRUE(a && b) << analysis::render_human(diags.diagnostics());
  EXPECT_EQ(a->canonical_key(), b->canonical_key());
}

TEST(CanonicalKey, DistinguishesEveryRelevantField) {
  DiagnosticEngine diags;
  const auto base = parse_request(kPredictLine, diags);
  ASSERT_TRUE(base);
  const char* variants[] = {
      // different tile
      R"({"v":1,"kind":"predict","stencil":"Heat2D",)"
      R"("problem":{"S":[512,512],"T":64},"tile":{"tT":8,"tS1":8,"tS2":160},)"
      R"("threads":{"n1":32,"n2":4}})",
      // different problem
      R"({"v":1,"kind":"predict","stencil":"Heat2D",)"
      R"("problem":{"S":[512,512],"T":128},"tile":{"tT":6,"tS1":8,"tS2":160},)"
      R"("threads":{"n1":32,"n2":4}})",
      // different device
      R"({"v":1,"kind":"predict","device":"Titan X","stencil":"Heat2D",)"
      R"("problem":{"S":[512,512],"T":64},"tile":{"tT":6,"tS1":8,"tS2":160},)"
      R"("threads":{"n1":32,"n2":4}})",
      // no threads
      R"({"v":1,"kind":"predict","stencil":"Heat2D",)"
      R"("problem":{"S":[512,512],"T":64},"tile":{"tT":6,"tS1":8,"tS2":160}})",
  };
  for (const char* line : variants) {
    diags.clear();
    const auto other = parse_request(line, diags);
    ASSERT_TRUE(other) << line << "\n"
                       << analysis::render_human(diags.diagnostics());
    EXPECT_NE(base->canonical_key(), other->canonical_key()) << line;
  }
}

TEST(Protocol, AuditFlagParsesOnLintOnly) {
  DiagnosticEngine diags;
  const auto req = parse_request(
      R"({"v":1,"kind":"lint","stencil":"Heat2D","audit":true})", diags);
  ASSERT_TRUE(req) << analysis::render_human(diags.diagnostics());
  EXPECT_TRUE(req->audit);

  // Defaults off.
  diags.clear();
  const auto plain =
      parse_request(R"({"v":1,"kind":"lint","stencil":"Heat2D"})", diags);
  ASSERT_TRUE(plain);
  EXPECT_FALSE(plain->audit);

  // Not a lint field elsewhere: unknown-field rejection (SL405).
  diags.clear();
  EXPECT_EQ(parse_request(
                R"({"v":1,"kind":"predict","stencil":"Heat2D",)"
                R"("problem":{"S":[512,512],"T":64},)"
                R"("tile":{"tT":6,"tS1":8,"tS2":160},"audit":true})",
                diags),
            std::nullopt);
  EXPECT_TRUE(diags.has_code(Code::kSvcBadField));
}

TEST(Protocol, AuditFlagMustBeBoolean) {
  DiagnosticEngine diags;
  EXPECT_EQ(parse_request(
                R"({"v":1,"kind":"lint","stencil":"Heat2D","audit":1})",
                diags),
            std::nullopt);
  EXPECT_TRUE(diags.has_code(Code::kSvcBadField));
}

TEST(CanonicalKey, AuditEntersTheKeyOnlyWhenEnabled) {
  DiagnosticEngine diags;
  const auto off =
      parse_request(R"({"v":1,"kind":"lint","stencil":"Heat2D"})", diags);
  const auto explicit_off = parse_request(
      R"({"v":1,"kind":"lint","stencil":"Heat2D","audit":false})", diags);
  const auto on = parse_request(
      R"({"v":1,"kind":"lint","stencil":"Heat2D","audit":true})", diags);
  ASSERT_TRUE(off && explicit_off && on)
      << analysis::render_human(diags.diagnostics());
  // Pre-audit clients' stored results must keep their keys: audit:false
  // (explicit or defaulted) is canonically absent.
  EXPECT_EQ(off->canonical_key(), explicit_off->canonical_key());
  EXPECT_EQ(off->canonical_key().find("audit"), std::string::npos);
  EXPECT_NE(on->canonical_key(), off->canonical_key());
  EXPECT_NE(on->canonical_key().find("audit"), std::string::npos);
}

TEST(CanonicalKey, BestTileKeyTracksTuningOptions) {
  DiagnosticEngine diags;
  const auto a = parse_request(
      R"({"v":1,"kind":"best_tile","stencil":"Heat2D",)"
      R"("problem":{"S":[512,512],"T":64},"delta":0.1})",
      diags);
  const auto b = parse_request(
      R"({"v":1,"kind":"best_tile","stencil":"Heat2D",)"
      R"("problem":{"S":[512,512],"T":64},"delta":0.2})",
      diags);
  ASSERT_TRUE(a && b);
  EXPECT_NE(a->canonical_key(), b->canonical_key());
}

// --- Rendering --------------------------------------------------------

TEST(Render, ResultSplicesPayloadVerbatim) {
  const std::string payload = R"({"feasible":true,"talg":0.25})";
  EXPECT_EQ(render_result("r1", RequestKind::kPredict, payload),
            R"({"v":1,"id":"r1","ok":true,"kind":"predict","result":)" +
                payload + "}");
}

TEST(Render, ErrorCarriesFirstErrorCodeAndAllDiagnostics) {
  analysis::DiagnosticEngine diags;
  diags.warn(Code::kSvcBadField, "just a warning");
  diags.error(Code::kSvcMissingField, "'problem' is required");
  diags.error(Code::kSvcBadField, "second error");
  const std::string out = render_error("r2", diags.diagnostics());
  EXPECT_NE(out.find(R"("ok":false)"), std::string::npos);
  EXPECT_NE(out.find(R"("code":"SL404")"), std::string::npos);
  EXPECT_NE(out.find("just a warning"), std::string::npos);
  EXPECT_NE(out.find("second error"), std::string::npos);
  // The envelope itself is valid JSON.
  EXPECT_TRUE(json::parse(out).has_value());
}

}  // namespace
}  // namespace repro::service
