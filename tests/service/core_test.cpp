#include "service/core.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "device/registry.hpp"
#include "stencil/stencil.hpp"

namespace repro::service {
namespace {

namespace fs = std::filesystem;

constexpr const char* kPredict =
    R"({"v":1,"id":"p1","kind":"predict","stencil":"Heat2D",)"
    R"("problem":{"S":[512,512],"T":64},"tile":{"tT":6,"tS1":8,"tS2":160},)"
    R"("threads":{"n1":32,"n2":4}})";

constexpr const char* kBestTile =
    R"({"v":1,"id":"b1","kind":"best_tile","stencil":"Heat2D",)"
    R"("problem":{"S":[512,512],"T":64},)"
    R"("enum":{"tT_max":8,"tS1_max":12,"tS2_max":192}})";

constexpr const char* kLint =
    R"({"v":1,"id":"l1","kind":"lint","stencil":"Heat2D",)"
    R"("problem":{"S":[512,512],"T":64},"tile":{"tT":6,"tS1":8,"tS2":160}})";

std::string predict_with_tT(int tT, const std::string& id) {
  return R"({"v":1,"id":")" + id +
         R"(","kind":"predict","stencil":"Heat2D",)"
         R"("problem":{"S":[512,512],"T":64},"tile":{"tT":)" +
         std::to_string(tT) + R"(,"tS1":8,"tS2":160},)"
         R"("threads":{"n1":32,"n2":4}})";
}

class CoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_dir_ = fs::temp_directory_path() / "repro_core_test_store";
    fs::remove_all(store_dir_);
  }
  void TearDown() override { fs::remove_all(store_dir_); }

  fs::path store_dir_;
};

// The central determinism pin: a cold computation, a warm-store hit
// from a brand-new core, and a direct tuner::Session computation all
// serve byte-identical responses.
TEST_F(CoreTest, ColdWarmAndDirectSessionAreByteIdentical) {
  const std::vector<std::string> lines = {kPredict, kBestTile, kLint};

  std::vector<std::string> cold;
  {
    ServiceCore core(ServiceOptions{}.with_store_dir(store_dir_.string()));
    for (const std::string& line : lines) cold.push_back(core.handle(line));
    const ServiceStats s = core.stats();
    EXPECT_EQ(s.computed, lines.size());
    EXPECT_EQ(s.store_writes, lines.size());
    EXPECT_EQ(s.store_hits, 0u);
    EXPECT_EQ(s.errors, 0u);
  }

  // Warm: a NEW core over the same store directory never recomputes.
  {
    ServiceCore core(ServiceOptions{}.with_store_dir(store_dir_.string()));
    for (std::size_t i = 0; i < lines.size(); ++i) {
      EXPECT_EQ(core.handle(lines[i]), cold[i]);
    }
    const ServiceStats s = core.stats();
    EXPECT_EQ(s.computed, 0u);
    EXPECT_EQ(s.store_hits, lines.size());
  }

  // Direct: compute_payload against a fresh Session, no service stack.
  analysis::DiagnosticEngine diags;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    diags.clear();
    const auto req = parse_request(lines[i], diags);
    ASSERT_TRUE(req);
    std::unique_ptr<tuner::Session> session;
    if (req->kind != RequestKind::kLint &&
        req->kind != RequestKind::kDevices) {
      session = std::make_unique<tuner::Session>(
          *device::registry().find(req->device), req->def, *req->problem,
          tuner::SessionOptions{}.with_jobs(1));
    }
    EXPECT_EQ(render_result(req->id, req->kind,
                            compute_payload(*req, session.get())),
              cold[i]);
  }
}

TEST_F(CoreTest, AuditLintReturnsStructuredSL5xxFindings) {
  ServiceCore core{ServiceOptions{}};
  // 1024 threads against a tile whose widest row has 128 iteration
  // points: the audit predicts idle threads (SL512) with a fix-it hint.
  const std::string audited = core.handle(
      R"({"v":1,"id":"a1","kind":"lint","stencil":"Heat2D",)"
      R"("tile":{"tT":2,"tS1":4,"tS2":32},"threads":{"n1":1024},)"
      R"("audit":true})");
  EXPECT_NE(audited.find(R"("ok":true)"), std::string::npos);
  EXPECT_NE(audited.find("SL512"), std::string::npos);
  EXPECT_NE(audited.find(R"("hint")"), std::string::npos);
  EXPECT_TRUE(json::parse(audited).has_value()) << audited;
}

TEST_F(CoreTest, AuditOffPayloadIsByteIdenticalToLegacyLint) {
  // The explicit "audit":false spelling and the pre-audit request
  // shape must serve the same bytes (same canonical key, same payload:
  // warm-store entries written before the audit existed stay valid).
  ServiceCore core{ServiceOptions{}};
  const std::string legacy = core.handle(kLint);
  const std::string explicit_off = core.handle(
      R"({"v":1,"id":"l1","kind":"lint","stencil":"Heat2D",)"
      R"("problem":{"S":[512,512],"T":64},"tile":{"tT":6,"tS1":8,"tS2":160},)"
      R"("audit":false})");
  EXPECT_EQ(legacy, explicit_off);
  // No SL5xx family codes and no hint keys on the legacy path.
  EXPECT_EQ(legacy.find("SL5"), std::string::npos);
  EXPECT_EQ(legacy.find(R"("hint")"), std::string::npos);
}

TEST_F(CoreTest, RepeatedRequestsRecomputeIdenticallyWithoutStore) {
  ServiceCore core{ServiceOptions{}};  // no store, serial traffic
  const std::string first = core.handle(kPredict);
  const std::string second = core.handle(kPredict);
  EXPECT_EQ(first, second);
  EXPECT_EQ(core.stats().computed, 2u);  // no store, no coalescing window
}

TEST_F(CoreTest, ParseErrorsProduceStructuredResponses) {
  ServiceCore core{ServiceOptions{}};
  const std::string bad = core.handle("{broken");
  EXPECT_NE(bad.find(R"("ok":false)"), std::string::npos);
  EXPECT_NE(bad.find("SL401"), std::string::npos);
  const std::string unknown =
      core.handle(R"({"v":1,"id":"x","kind":"nope","stencil":"Heat2D"})");
  EXPECT_NE(unknown.find(R"("id":"x")"), std::string::npos);
  EXPECT_NE(unknown.find("SL403"), std::string::npos);
  EXPECT_EQ(core.stats().errors, 2u);
  EXPECT_EQ(core.stats().computed, 0u);
}

// Concurrent identical requests coalesce onto one computation and all
// receive the same bytes.
TEST_F(CoreTest, ConcurrentIdenticalRequestsCoalesce) {
  ServiceCore core(ServiceOptions{}.with_workers(2));

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  core.set_compute_hook([&] {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return release; });
  });

  constexpr int kClients = 4;
  std::vector<std::string> responses(kClients);
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back(
        [&core, &responses, i] { responses[static_cast<std::size_t>(i)] = core.handle(kPredict); });
  }

  // Wait until every non-leader joined the in-flight computation,
  // then let the single compute proceed.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (core.stats().coalesced < kClients - 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(core.stats().coalesced, static_cast<std::uint64_t>(kClients - 1));
  {
    std::lock_guard<std::mutex> lk(mu);
    release = true;
  }
  cv.notify_all();
  for (std::thread& t : threads) t.join();

  const ServiceStats s = core.stats();
  EXPECT_EQ(s.computed, 1u);  // singleflight: one computation, N answers
  EXPECT_EQ(s.errors, 0u);
  for (int i = 1; i < kClients; ++i) {
    EXPECT_EQ(responses[static_cast<std::size_t>(i)], responses[0]);
  }
}

// Admission control: with the queue full, a new request fails fast
// with a structured SL406 error instead of blocking forever.
TEST_F(CoreTest, FullQueueReturnsStructuredOverloadError) {
  ServiceCore core(
      ServiceOptions{}.with_workers(1).with_queue_depth(1));

  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> entered{0};
  core.set_compute_hook([&] {
    entered.fetch_add(1);
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return release; });
  });

  // r1 occupies the single worker (blocked in the hook); r2 fills the
  // depth-1 queue.
  std::thread t1([&core] { core.handle(predict_with_tT(4, "r1")); });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (entered.load() < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(entered.load(), 1);
  std::thread t2([&core] { core.handle(predict_with_tT(6, "r2")); });
  // Give r2 time to land in the queue before probing.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  // r3 must be rejected immediately with SL406, while the daemon is
  // still busy.
  const auto t0 = std::chrono::steady_clock::now();
  const std::string rejected = core.handle(predict_with_tT(8, "r3"));
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_NE(rejected.find(R"("ok":false)"), std::string::npos);
  EXPECT_NE(rejected.find("SL406"), std::string::npos);
  EXPECT_NE(rejected.find(R"("id":"r3")"), std::string::npos);
  EXPECT_LT(elapsed, 5.0);  // fail-fast, not blocked behind the queue

  {
    std::lock_guard<std::mutex> lk(mu);
    release = true;
  }
  cv.notify_all();
  t1.join();
  t2.join();

  const ServiceStats s = core.stats();
  EXPECT_EQ(s.overloaded, 1u);
  EXPECT_EQ(s.computed, 2u);  // r1 and r2 still completed
}

TEST_F(CoreTest, DevicesListingEnumeratesRegistryAndBypassesStore) {
  ServiceCore core(ServiceOptions{}.with_store_dir(store_dir_.string()));
  const std::string out =
      core.handle(R"({"v":1,"id":"d1","kind":"devices"})");
  const auto doc = json::parse(out);
  ASSERT_TRUE(doc && doc->is_object()) << out;
  EXPECT_TRUE(doc->find("ok")->as_bool());
  const json::Value* result = doc->find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->find("count")->as_int(),
            static_cast<std::int64_t>(device::registry().size()));
  const json::Value* devices = result->find("devices");
  ASSERT_TRUE(devices != nullptr && devices->is_array());
  // Registration order, both backends, with a capability summary.
  const auto& items = devices->items();
  ASSERT_EQ(items.size(), device::registry().size());
  EXPECT_EQ(items[0].find("name")->as_string(), "GTX 980");
  EXPECT_EQ(items[0].find("kind")->as_string(), "gpu");
  EXPECT_EQ(items[2].find("name")->as_string(), "Xeon E5-2690 v4");
  EXPECT_EQ(items[2].find("kind")->as_string(), "cpu");
  EXPECT_FALSE(items[2].find("summary")->as_string().empty());
  // The listing reflects process-local registry state, so it is never
  // persisted: a second core over the same store recomputes it.
  EXPECT_EQ(core.stats().store_writes, 0u);
  EXPECT_EQ(core.stats().devices, 1u);
  ServiceCore warm(ServiceOptions{}.with_store_dir(store_dir_.string()));
  EXPECT_EQ(warm.handle(R"({"v":1,"id":"d1","kind":"devices"})"), out);
  EXPECT_EQ(warm.stats().store_hits, 0u);
  EXPECT_EQ(warm.stats().computed, 1u);
}

TEST_F(CoreTest, UnknownDeviceIsSL522WithNearestCandidates) {
  ServiceCore core{ServiceOptions{}};
  const std::string out = core.handle(
      R"({"v":1,"id":"u1","kind":"predict","device":"GTX 908",)"
      R"("stencil":"Heat2D","problem":{"S":[512,512],"T":64},)"
      R"("tile":{"tT":6,"tS1":8,"tS2":160}})");
  EXPECT_NE(out.find(R"("ok":false)"), std::string::npos);
  EXPECT_NE(out.find("SL522"), std::string::npos);
  // The structured error lists the registered names and suggests the
  // nearest one.
  EXPECT_NE(out.find("Xeon E5-2690 v4"), std::string::npos);
  EXPECT_NE(out.find("did you mean"), std::string::npos);
  EXPECT_NE(out.find("GTX 980"), std::string::npos);
  EXPECT_EQ(core.stats().errors, 1u);
  EXPECT_EQ(core.stats().computed, 0u);
}

TEST_F(CoreTest, StatsJsonIsValidAndComplete) {
  ServiceCore core(ServiceOptions{}.with_store_dir(store_dir_.string()));
  core.handle(kPredict);
  core.handle(kPredict);  // store hit
  const auto doc = json::parse(core.stats_json());
  ASSERT_TRUE(doc && doc->is_object());
  EXPECT_EQ(doc->find("requests")->as_int(), 2);
  EXPECT_EQ(doc->find("computed")->as_int(), 1);
  EXPECT_EQ(doc->find("store_hits")->as_int(), 1);
  EXPECT_EQ(doc->find("kinds")->find("predict")->as_int(), 2);
  EXPECT_TRUE(doc->find("latency_seconds")->is_number());
}

TEST_F(CoreTest, StatsKindReportsLiveCountersAndBypassesStore) {
  ServiceCore core(ServiceOptions{}.with_store_dir(store_dir_.string()));
  core.handle(kPredict);
  const std::string out = core.handle(R"({"v":1,"id":"s1","kind":"stats"})");
  const auto doc = json::parse(out);
  ASSERT_TRUE(doc && doc->is_object()) << out;
  EXPECT_TRUE(doc->find("ok")->as_bool());
  const json::Value* r = doc->find("result");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->find("requests")->as_int(), 2);  // itself included
  EXPECT_EQ(r->find("computed")->as_int(), 1);
  EXPECT_EQ(r->find("kinds")->find("stats")->as_int(), 1);
  // The store scan and session aggregation are live.
  EXPECT_EQ(r->find("store_entries")->as_int(), 1);
  EXPECT_GT(r->find("store_bytes")->as_int(), 0);
  EXPECT_GE(r->find("session_machine_points")->as_int(), 1);
  EXPECT_TRUE(r->find("store_oldest_age_s")->is_number());
  // Instance state: answered inline, never computed, never stored.
  EXPECT_EQ(core.stats().computed, 1u);
  EXPECT_EQ(core.stats().store_writes, 1u);
  EXPECT_EQ(core.stats().stats_kind, 1u);
  // Strict schema still applies: stats takes no computation fields.
  const std::string bad = core.handle(
      R"({"v":1,"id":"s2","kind":"stats","problem":{"S":[8],"T":1}})");
  EXPECT_NE(bad.find("SL405"), std::string::npos);
}

TEST_F(CoreTest, WarmStartSeedingKeepsBestTileBytesIdentical) {
  // A donor problem then an adjacent one, served by a seeding core
  // and a non-seeding core over separate stores: the similarity index
  // must be consulted, and must not change a single served byte.
  const std::string donor = kBestTile;
  const std::string near_miss =
      R"({"v":1,"id":"b2","kind":"best_tile","stencil":"Heat2D",)"
      R"("problem":{"S":[480,480],"T":64},)"
      R"("enum":{"tT_max":8,"tS1_max":12,"tS2_max":192}})";

  ServiceCore off(ServiceOptions{}
                      .with_store_dir((store_dir_ / "off").string())
                      .with_warm_start(false));
  ServiceCore on(ServiceOptions{}
                     .with_store_dir((store_dir_ / "on").string()));
  for (const std::string& line : {donor, near_miss}) {
    EXPECT_EQ(on.handle(line), off.handle(line));
  }
  EXPECT_EQ(off.stats().warm_lookups, 0u);
  EXPECT_EQ(on.stats().warm_lookups, 2u);
  EXPECT_GE(on.stats().warm_seeds, 1u);  // the near miss found the donor
}

TEST_F(CoreTest, InternalFailuresBecomeSL407) {
  ServiceCore core{ServiceOptions{}};
  core.set_compute_hook([] { throw std::runtime_error("injected failure"); });
  const std::string out = core.handle(kPredict);
  EXPECT_NE(out.find(R"("ok":false)"), std::string::npos);
  EXPECT_NE(out.find("SL407"), std::string::npos);
  EXPECT_NE(out.find("injected failure"), std::string::npos);
  EXPECT_EQ(core.stats().errors, 1u);
}

}  // namespace
}  // namespace repro::service
