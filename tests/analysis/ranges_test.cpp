// Tap/footprint range analysis (SL501-SL506): each code has at least
// one triggering case and one clean case. These checks run on the
// semantic StencilDef, so hand-built definitions (radius inconsistent
// with taps, NaN weights) are covered even though the parser can never
// produce some of them.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "analysis/diagnostics.hpp"
#include "analysis/ranges.hpp"
#include "stencil/stencil.hpp"

namespace repro::analysis {
namespace {

stencil::StencilDef make_def(int dim, int radius,
                             std::vector<stencil::Tap> taps) {
  stencil::StencilDef def;
  def.kind = stencil::StencilKind::kCustom;
  def.name = "RangeTest";
  def.dim = dim;
  def.radius = radius;
  def.taps = std::move(taps);
  return def;
}

TEST(TapRanges, AnalyzeComputesReachAndSums) {
  const auto def = make_def(2, 2,
                            {{{0, 0, 0}, 0.5},
                             {{-2, 0, 0}, 0.25},
                             {{2, 0, 0}, 0.25},
                             {{0, -1, 0}, -0.1},
                             {{0, 1, 0}, -0.1}});
  const TapRangeInfo info = analyze_tap_ranges(def);
  EXPECT_EQ(info.reach[0], 2);
  EXPECT_EQ(info.reach[1], 1);
  EXPECT_EQ(info.reach[2], 0);
  EXPECT_EQ(info.max_reach, 2);
  EXPECT_TRUE(info.finite);
  EXPECT_EQ(info.duplicate_taps, 0u);
  EXPECT_EQ(info.zero_weight_taps, 0u);
  EXPECT_NEAR(info.weight_sum, 0.8, 1e-12);
  EXPECT_NEAR(info.abs_weight_sum, 1.2, 1e-12);
}

TEST(TapRanges, TapBeyondRadiusIsSL501Error) {
  const auto def =
      make_def(1, 1, {{{0, 0, 0}, 0.5}, {{-2, 0, 0}, 0.25},
                      {{2, 0, 0}, 0.25}});
  DiagnosticEngine e;
  EXPECT_FALSE(check_tap_ranges(def, e));
  EXPECT_TRUE(e.has_errors());
  EXPECT_TRUE(e.has_code(Code::kAuditTapBeyondRadius));
  // Fix-it hint names the radius that would make the program legal.
  bool hinted = false;
  for (const Diagnostic& d : e.diagnostics()) {
    if (d.code == Code::kAuditTapBeyondRadius) {
      hinted = hinted || d.hint.find("radius >= 2") != std::string::npos;
    }
  }
  EXPECT_TRUE(hinted);
}

TEST(TapRanges, TapWithinRadiusIsClean) {
  const auto def =
      make_def(1, 2, {{{0, 0, 0}, 0.5}, {{-2, 0, 0}, 0.25},
                      {{2, 0, 0}, 0.25}});
  DiagnosticEngine e;
  EXPECT_TRUE(check_tap_ranges(def, e));
  EXPECT_FALSE(e.has_code(Code::kAuditTapBeyondRadius));
  EXPECT_FALSE(e.has_code(Code::kAuditRadiusOverdeclared));
}

TEST(TapRanges, OverdeclaredRadiusIsSL502Warning) {
  const auto def =
      make_def(1, 3, {{{0, 0, 0}, 0.5}, {{-1, 0, 0}, 0.25},
                      {{1, 0, 0}, 0.25}});
  DiagnosticEngine e;
  EXPECT_TRUE(check_tap_ranges(def, e));  // warning, not error
  EXPECT_TRUE(e.has_code(Code::kAuditRadiusOverdeclared));
  EXPECT_FALSE(e.has_errors());
}

TEST(TapRanges, DuplicateTapIsSL503Warning) {
  const auto def =
      make_def(1, 1, {{{0, 0, 0}, 0.4}, {{-1, 0, 0}, 0.2},
                      {{1, 0, 0}, 0.2}, {{1, 0, 0}, 0.2}});
  DiagnosticEngine e;
  check_tap_ranges(def, e);
  EXPECT_TRUE(e.has_code(Code::kAuditDuplicateTap));
  EXPECT_FALSE(e.has_errors());
}

TEST(TapRanges, DistinctTapsHaveNoSL503) {
  const auto def =
      make_def(1, 1, {{{0, 0, 0}, 0.6}, {{-1, 0, 0}, 0.2},
                      {{1, 0, 0}, 0.2}});
  DiagnosticEngine e;
  check_tap_ranges(def, e);
  EXPECT_FALSE(e.has_code(Code::kAuditDuplicateTap));
}

TEST(TapRanges, NanWeightIsSL504Error) {
  const auto def = make_def(
      1, 1,
      {{{0, 0, 0}, std::numeric_limits<double>::quiet_NaN()},
       {{-1, 0, 0}, 0.2},
       {{1, 0, 0}, 0.2}});
  DiagnosticEngine e;
  EXPECT_FALSE(check_tap_ranges(def, e));
  EXPECT_TRUE(e.has_code(Code::kAuditNonFiniteCoefficient));
}

TEST(TapRanges, InfiniteConstantIsSL504Error) {
  auto def = make_def(1, 1, {{{0, 0, 0}, 1.0}});
  def.constant = std::numeric_limits<double>::infinity();
  DiagnosticEngine e;
  EXPECT_FALSE(check_tap_ranges(def, e));
  EXPECT_TRUE(e.has_code(Code::kAuditNonFiniteCoefficient));
}

TEST(TapRanges, FiniteCoefficientsHaveNoSL504) {
  const auto def = make_def(1, 1, {{{0, 0, 0}, 1.0}});
  DiagnosticEngine e;
  EXPECT_TRUE(check_tap_ranges(def, e));
  EXPECT_FALSE(e.has_code(Code::kAuditNonFiniteCoefficient));
}

TEST(TapRanges, ZeroWeightTapIsSL505Warning) {
  const auto def =
      make_def(1, 1, {{{0, 0, 0}, 1.0}, {{-1, 0, 0}, 0.0},
                      {{1, 0, 0}, 0.0}});
  DiagnosticEngine e;
  check_tap_ranges(def, e);
  EXPECT_TRUE(e.has_code(Code::kAuditDeadTap));
  EXPECT_FALSE(e.has_errors());
}

TEST(TapRanges, GradientBodySkipsZeroWeightAndAmplification) {
  // Gradient-style bodies carry structural taps whose weights do not
  // mean "convolution coefficient" — the parser's SL108 skips them,
  // and the semantic twin must agree.
  auto def = make_def(2, 1,
                      {{{0, 0, 0}, 0.0},
                       {{-1, 0, 0}, -1.0},
                       {{1, 0, 0}, 1.0},
                       {{0, -1, 0}, -1.0},
                       {{0, 1, 0}, 1.0}});
  def.body = stencil::BodyKind::kGradientMagnitude;
  DiagnosticEngine e;
  EXPECT_TRUE(check_tap_ranges(def, e));
  EXPECT_FALSE(e.has_code(Code::kAuditDeadTap));
  EXPECT_FALSE(e.has_code(Code::kAuditAmplification));
}

TEST(TapRanges, AmplifyingWeightedSumIsSL506Note) {
  const auto def =
      make_def(1, 1, {{{0, 0, 0}, 1.0}, {{-1, 0, 0}, 0.3},
                      {{1, 0, 0}, 0.3}});
  DiagnosticEngine e;
  EXPECT_TRUE(check_tap_ranges(def, e));  // note only
  EXPECT_TRUE(e.has_code(Code::kAuditAmplification));
  EXPECT_FALSE(e.has_errors());
}

TEST(TapRanges, ConvexSumHasNoSL506) {
  const auto def =
      make_def(1, 1, {{{0, 0, 0}, 0.5}, {{-1, 0, 0}, 0.25},
                      {{1, 0, 0}, 0.25}});
  DiagnosticEngine e;
  check_tap_ranges(def, e);
  EXPECT_FALSE(e.has_code(Code::kAuditAmplification));
}

}  // namespace
}  // namespace repro::analysis
