// Sweep-space dead-region certificates: the proof obligation. A
// certificate asserts "every lattice point in these tail boxes is
// infeasible"; the only acceptable evidence is exact agreement with
// tuner::enumerate_feasible, which rejects point by point. The parity
// suite runs the full default lattice on both shipped devices, dims
// 1-3 and radii 1-2.
#include <gtest/gtest.h>

#include <stdexcept>

#include "analysis/ranges.hpp"
#include "gpusim/device.hpp"
#include "hhc/footprint.hpp"
#include "tuner/space.hpp"

namespace repro::analysis {
namespace {

TEST(Certificate, DefaultGridMatchesEnumDefaults) {
  // SweepGrid's defaults exist so analysis/ need not link the tuner;
  // they must stay in lock-step with tuner::EnumOptions.
  EXPECT_EQ(SweepGrid{}, tuner::to_sweep_grid(tuner::EnumOptions{}));
}

TEST(Certificate, LivePointsEqualEnumerateFeasibleEverywhere) {
  for (const gpusim::DeviceParams* dev :
       {&gpusim::gtx980(), &gpusim::titan_x()}) {
    const model::HardwareParams hw = dev->to_model_hardware();
    for (int dim = 1; dim <= 3; ++dim) {
      for (std::int64_t radius = 1; radius <= 2; ++radius) {
        const tuner::EnumOptions opt;
        const SweepCertificate cert =
            certify_sweep(dim, hw, tuner::to_sweep_grid(opt), radius);
        const auto live = certified_live_points(cert);
        const auto expected = tuner::enumerate_feasible(dim, hw, opt, radius);
        ASSERT_EQ(live.size(), expected.size())
            << dev->name << " dim=" << dim << " r=" << radius;
        for (std::size_t i = 0; i < live.size(); ++i) {
          ASSERT_EQ(live[i], expected[i])
              << dev->name << " dim=" << dim << " r=" << radius
              << " index " << i;
        }
        // The exact dead count is the complement of the live count.
        EXPECT_EQ(cert.dead_points + static_cast<std::int64_t>(live.size()),
                  cert.lattice_points)
            << dev->name << " dim=" << dim << " r=" << radius;
      }
    }
  }
}

TEST(Certificate, ParityHoldsOnCoarseAndShiftedGrids) {
  const model::HardwareParams hw = gpusim::gtx980().to_model_hardware();
  tuner::EnumOptions opts[3];
  opts[0].with_tT_max(24).with_tT_step(4).with_tS1_step(3);
  opts[1].with_tS2_step(16).with_tS2_max(96).with_tS1_max(40);
  opts[2].with_tT_max(64).with_tS1_max(8).with_tS2_step(64).with_tS3_step(16);
  for (const tuner::EnumOptions& opt : opts) {
    for (int dim = 1; dim <= 3; ++dim) {
      const SweepCertificate cert =
          certify_sweep(dim, hw, tuner::to_sweep_grid(opt), 1);
      const auto live = certified_live_points(cert);
      const auto expected = tuner::enumerate_feasible(dim, hw, opt, 1);
      ASSERT_EQ(live.size(), expected.size()) << "dim=" << dim;
      for (std::size_t i = 0; i < live.size(); ++i) {
        ASSERT_EQ(live[i], expected[i]) << "dim=" << dim;
      }
    }
  }
}

TEST(Certificate, EveryRegionCornerActuallyFailsCapacity) {
  // Each tail box is justified by one corner check: the corner itself
  // must exceed the capacity wall, or the certificate proves nothing.
  const model::HardwareParams hw = gpusim::titan_x().to_model_hardware();
  const std::int64_t limit =
      std::min(hw.max_shared_words_per_block, hw.shared_words_per_sm);
  for (int dim = 2; dim <= 3; ++dim) {
    const SweepCertificate cert = certify_sweep(dim, hw, SweepGrid{}, 1);
    ASSERT_FALSE(cert.dead.empty()) << "dim=" << dim;
    for (const DeadRegion& region : cert.dead) {
      EXPECT_GT(hhc::shared_words_per_tile(dim, region.lo, 1), limit);
      EXPECT_GT(region.points, 0);
      EXPECT_TRUE(cert.covers(region.lo));
    }
  }
}

TEST(Certificate, CoversRejectsBelowSlopeAndAcceptsLivePoints) {
  const model::HardwareParams hw = gpusim::gtx980().to_model_hardware();
  const SweepCertificate cert = certify_sweep(2, hw, SweepGrid{}, 2);
  // tS1 below the radius violates the slope constraint everywhere.
  EXPECT_TRUE(
      cert.covers(hhc::TileSizes{.tT = 2, .tS1 = 1, .tS2 = 32, .tS3 = 1}));
  // A small tile comfortably inside capacity must stay live.
  EXPECT_FALSE(
      cert.covers(hhc::TileSizes{.tT = 2, .tS1 = 4, .tS2 = 32, .tS3 = 1}));
}

TEST(Certificate, DegenerateGridIsEmptyLattice) {
  const model::HardwareParams hw = gpusim::gtx980().to_model_hardware();
  SweepGrid g;
  g.tT_max = 0;  // no even tT >= 2 exists
  const SweepCertificate cert = certify_sweep(2, hw, g, 1);
  EXPECT_EQ(cert.lattice_points, 0);
  EXPECT_TRUE(certified_live_points(cert).empty());
  // The tuner rejects the degenerate bound eagerly (SL312) where the
  // audit certifies it as an empty lattice; both agree nothing runs.
  EXPECT_THROW((void)tuner::enumerate_feasible(
                   2, hw, tuner::EnumOptions{}.with_tT_max(0)),
               std::invalid_argument);

  DiagnosticEngine e;
  audit_sweep(cert, e);
  EXPECT_TRUE(e.has_code(Code::kAuditEmptySweep));
  EXPECT_TRUE(e.has_errors());
}

TEST(Certificate, FullyDeadGridIsSL531AndMatchesEnumeration) {
  const model::HardwareParams hw = gpusim::gtx980().to_model_hardware();
  SweepGrid g;
  g.tS2_step = 8192;
  g.tS2_max = 8192;
  const SweepCertificate cert = certify_sweep(2, hw, g, 1);
  EXPECT_GT(cert.lattice_points, 0);
  EXPECT_TRUE(cert.empty());
  EXPECT_TRUE(certified_live_points(cert).empty());
  tuner::EnumOptions opt;
  opt.with_tS2_step(8192).with_tS2_max(8192);
  EXPECT_TRUE(tuner::enumerate_feasible(2, hw, opt).empty());

  DiagnosticEngine e;
  audit_sweep(cert, e);
  EXPECT_TRUE(e.has_code(Code::kAuditEmptySweep));
}

TEST(Certificate, HealthySweepEmitsRegionNotesOnly) {
  const model::HardwareParams hw = gpusim::gtx980().to_model_hardware();
  const SweepCertificate cert = certify_sweep(2, hw, SweepGrid{}, 1);
  EXPECT_GT(cert.dead_points, 0);
  EXPECT_FALSE(cert.empty());
  DiagnosticEngine e;
  audit_sweep(cert, e);
  EXPECT_TRUE(e.has_code(Code::kAuditDeadRegion));
  EXPECT_FALSE(e.has_errors());
  for (const Diagnostic& d : e.diagnostics()) {
    EXPECT_EQ(d.severity, Severity::kNote);
  }
}

}  // namespace
}  // namespace repro::analysis
