// The audit driver: device-descriptor invariants (SL520), calibration
// plausibility (SL520/SL521), and end-to-end audit_stencil_text /
// audit_stencil_def behavior including the ok flag and fix-it hints.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "analysis/audit.hpp"
#include "analysis/diagnostics.hpp"
#include "cpusim/device.hpp"
#include "device/descriptor.hpp"
#include "gpusim/device.hpp"
#include "gpusim/microbench.hpp"
#include "stencil/stencil.hpp"

namespace repro::analysis {
namespace {

constexpr const char* kGoodSpec = R"(
stencil Audit2D {
  dim 2
  tap (0,0)   0.2
  tap (-1,0)  0.2
  tap (1,0)   0.2
  tap (0,-1)  0.2
  tap (0,1)   0.2
}
)";

const stencil::StencilDef& heat2d() {
  return stencil::get_stencil(stencil::StencilKind::kHeat2D);
}

TEST(AuditDevice, ShippedDescriptorsAreClean) {
  for (const gpusim::DeviceParams* dev :
       {&gpusim::gtx980(), &gpusim::titan_x()}) {
    DiagnosticEngine e;
    EXPECT_TRUE(audit_device(*dev, e)) << dev->name;
    EXPECT_TRUE(e.diagnostics().empty()) << dev->name;
  }
}

TEST(AuditDevice, ZeroSmCountIsSL520) {
  gpusim::DeviceParams dev = gpusim::gtx980();
  dev.n_sm = 0;
  DiagnosticEngine e;
  EXPECT_FALSE(audit_device(dev, e));
  EXPECT_TRUE(e.has_code(Code::kAuditDeviceInvariant));
  EXPECT_TRUE(e.has_errors());
}

TEST(AuditDevice, BlockLimitAboveSmCapacityIsSL520) {
  gpusim::DeviceParams dev = gpusim::gtx980();
  dev.max_shared_bytes_per_block = dev.shared_bytes_per_sm + 1;
  DiagnosticEngine e;
  EXPECT_FALSE(audit_device(dev, e));
  EXPECT_TRUE(e.has_code(Code::kAuditDeviceInvariant));
}

TEST(AuditDevice, NonFiniteClockIsSL520) {
  gpusim::DeviceParams dev = gpusim::titan_x();
  dev.clock_hz = std::numeric_limits<double>::quiet_NaN();
  DiagnosticEngine e;
  EXPECT_FALSE(audit_device(dev, e));
  EXPECT_TRUE(e.has_code(Code::kAuditDeviceInvariant));
}

TEST(AuditDevice, NegativeLatencyIsSL520) {
  gpusim::DeviceParams dev = gpusim::gtx980();
  dev.mem_latency_s = -1e-6;
  DiagnosticEngine e;
  EXPECT_FALSE(audit_device(dev, e));
  EXPECT_TRUE(e.has_code(Code::kAuditDeviceInvariant));
}

TEST(AuditDevice, ShippedCpuDescriptorsAreClean) {
  for (const cpusim::CpuParams* dev :
       {&cpusim::xeon_e5_2690v4(), &cpusim::ryzen_3700x()}) {
    DiagnosticEngine e;
    EXPECT_TRUE(audit_device(*dev, e)) << dev->name;
    EXPECT_TRUE(e.diagnostics().empty()) << dev->name;
  }
}

TEST(AuditDevice, DescriptorOverloadDispatchesOnKind) {
  // The tagged overload must route each payload to its own invariant
  // set — a CPU defect must surface through a Descriptor too.
  cpusim::CpuParams cpu = cpusim::ryzen_3700x();
  cpu.cores = 0;
  DiagnosticEngine e;
  EXPECT_FALSE(audit_device(device::Descriptor(cpu), e));
  EXPECT_TRUE(e.has_code(Code::kAuditDeviceInvariant));
  DiagnosticEngine ok;
  EXPECT_TRUE(audit_device(device::Descriptor(gpusim::gtx980()), ok));
  EXPECT_TRUE(ok.diagnostics().empty());
}

TEST(AuditDevice, LineNotDividingCacheSizeIsSL520) {
  cpusim::CpuParams dev = cpusim::xeon_e5_2690v4();
  dev.levels[0].line_bytes = 60;  // 32 KB is not a whole number of lines
  DiagnosticEngine e;
  EXPECT_FALSE(audit_device(dev, e));
  EXPECT_TRUE(e.has_code(Code::kAuditDeviceInvariant));
}

TEST(AuditDevice, NonIncreasingCacheCapacityIsSL520) {
  cpusim::CpuParams dev = cpusim::xeon_e5_2690v4();
  ASSERT_GE(dev.levels.size(), 2u);
  dev.levels[1].size_bytes = dev.levels[0].size_bytes;  // L2 == L1
  DiagnosticEngine e;
  EXPECT_FALSE(audit_device(dev, e));
  EXPECT_TRUE(e.has_code(Code::kAuditDeviceInvariant));
}

TEST(AuditDevice, OutwardLevelFasterThanInnerIsSL520) {
  cpusim::CpuParams dev = cpusim::xeon_e5_2690v4();
  ASSERT_GE(dev.levels.size(), 2u);
  dev.levels[1].latency_s = dev.levels[0].latency_s / 2.0;
  DiagnosticEngine e;
  EXPECT_FALSE(audit_device(dev, e));
  EXPECT_TRUE(e.has_code(Code::kAuditDeviceInvariant));
}

TEST(AuditDevice, EmptyCacheHierarchyIsSL520) {
  cpusim::CpuParams dev = cpusim::ryzen_3700x();
  dev.levels.clear();
  DiagnosticEngine e;
  EXPECT_FALSE(audit_device(dev, e));
  EXPECT_TRUE(e.has_code(Code::kAuditDeviceInvariant));
}

TEST(AuditCalibration, RealCalibrationIsClean) {
  const model::ModelInputs in =
      gpusim::calibrate_model(gpusim::gtx980(), heat2d());
  DiagnosticEngine e;
  EXPECT_TRUE(audit_calibration(in, e));
  EXPECT_FALSE(e.has_errors());
  EXPECT_FALSE(e.has_code(Code::kAuditCalibrationSuspect));
}

TEST(AuditCalibration, ZeroMemoryTimeIsSL520) {
  model::ModelInputs in =
      gpusim::calibrate_model(gpusim::gtx980(), heat2d());
  in.mb.L_s_per_word = 0.0;
  DiagnosticEngine e;
  EXPECT_FALSE(audit_calibration(in, e));
  EXPECT_TRUE(e.has_code(Code::kAuditDeviceInvariant));
}

TEST(AuditCalibration, NegativeCiterIsSL520) {
  model::ModelInputs in =
      gpusim::calibrate_model(gpusim::gtx980(), heat2d());
  in.c_iter = -1e-9;
  DiagnosticEngine e;
  EXPECT_FALSE(audit_calibration(in, e));
  EXPECT_TRUE(e.has_code(Code::kAuditDeviceInvariant));
}

TEST(AuditCalibration, SwappedSyncPairIsSL521Warning) {
  model::ModelInputs in =
      gpusim::calibrate_model(gpusim::gtx980(), heat2d());
  std::swap(in.mb.tau_sync, in.mb.T_sync);
  // The swap only matters when the two differ (they do on every
  // shipped device); a sync priced above a kernel boundary is the
  // classic hand-edited-calibration-file bug.
  ASSERT_GT(in.mb.tau_sync, in.mb.T_sync);
  DiagnosticEngine e;
  EXPECT_TRUE(audit_calibration(in, e));  // suspicion, not an error
  EXPECT_TRUE(e.has_code(Code::kAuditCalibrationSuspect));
  EXPECT_FALSE(e.has_errors());
}

TEST(AuditCalibration, ImplausibleBandwidthIsSL521Warning) {
  model::ModelInputs in =
      gpusim::calibrate_model(gpusim::gtx980(), heat2d());
  in.mb.L_s_per_word = 4.0 / 1e15;  // a petabyte per second
  DiagnosticEngine e;
  EXPECT_TRUE(audit_calibration(in, e));
  EXPECT_TRUE(e.has_code(Code::kAuditCalibrationSuspect));
}

TEST(Audit, CleanProgramFullContextIsOk) {
  AuditOptions opt;
  opt.ts = hhc::TileSizes{.tT = 2, .tS1 = 8, .tS2 = 256, .tS3 = 1};
  opt.thr = hhc::ThreadConfig{.n1 = 256, .n2 = 1, .n3 = 1};
  opt.problem = stencil::ProblemSize{
      .dim = 2, .S = {4096, 4096, 0}, .T = 1024};
  opt.dev = gpusim::gtx980();
  opt.calibration = gpusim::calibrate_model(gpusim::gtx980(), heat2d());
  opt.sweep = SweepGrid{};
  DiagnosticEngine e;
  const AuditResult res = audit_stencil_text(kGoodSpec, opt, e);
  EXPECT_TRUE(res.ok);
  ASSERT_TRUE(res.def.has_value());
  ASSERT_TRUE(res.cone.has_value());
  ASSERT_TRUE(res.resources.has_value());
  EXPECT_TRUE(res.resources->fits);
  ASSERT_TRUE(res.certificate.has_value());
  EXPECT_FALSE(e.has_errors());
}

TEST(Audit, ParseFailureIsNotOkAndSkipsSemanticStages) {
  AuditOptions opt;
  opt.dev = gpusim::gtx980();
  DiagnosticEngine e;
  const AuditResult res =
      audit_stencil_text("stencil Broken { dim 2\n  tap (0,0)\n}", opt, e);
  EXPECT_FALSE(res.ok);
  EXPECT_FALSE(res.def.has_value());
  EXPECT_TRUE(e.has_errors());
}

TEST(Audit, HandBuiltHaloOverrunFailsTheAudit) {
  stencil::StencilDef def = heat2d();
  def.radius = 0;  // taps still reach 1: halo overrun
  DiagnosticEngine e;
  const AuditResult res = audit_stencil_def(def, AuditOptions{}, e);
  EXPECT_FALSE(res.ok);
  EXPECT_TRUE(e.has_code(Code::kAuditTapBeyondRadius));
}

TEST(Audit, CorruptDeviceFailsEvenWithCleanProgram) {
  AuditOptions opt;
  gpusim::DeviceParams dev = gpusim::gtx980();
  dev.regs_per_sm = 0;
  opt.dev = dev;
  DiagnosticEngine e;
  const AuditResult res = audit_stencil_text(kGoodSpec, opt, e);
  EXPECT_FALSE(res.ok);
  EXPECT_TRUE(e.has_code(Code::kAuditDeviceInvariant));
}

TEST(Audit, EmptySweepSpaceIsSL531Error) {
  AuditOptions opt;
  opt.dev = gpusim::gtx980();
  // Every lattice point of this grid statically overflows shared
  // memory: the whole sweep is provably dead.
  SweepGrid g;
  g.tS2_step = 8192;
  g.tS2_max = 8192;
  opt.sweep = g;
  DiagnosticEngine e;
  const AuditResult res = audit_stencil_text(kGoodSpec, opt, e);
  EXPECT_FALSE(res.ok);
  EXPECT_TRUE(e.has_code(Code::kAuditEmptySweep));
  ASSERT_TRUE(res.certificate.has_value());
  EXPECT_TRUE(res.certificate->empty());
}

TEST(Audit, DeadRegionNotesAreCappedBySummary) {
  AuditOptions opt;
  opt.dev = gpusim::gtx980();
  opt.sweep = SweepGrid{};
  opt.max_region_notes = 2;
  DiagnosticEngine e;
  const AuditResult res = audit_stencil_text(kGoodSpec, opt, e);
  EXPECT_TRUE(res.ok);  // dead regions are notes, not errors
  std::size_t region_notes = 0;
  for (const Diagnostic& d : e.diagnostics()) {
    if (d.code == Code::kAuditDeadRegion) ++region_notes;
  }
  // At most max_region_notes region notes plus the one summary note.
  EXPECT_GT(region_notes, 0u);
  EXPECT_LE(region_notes, 3u);
}

}  // namespace
}  // namespace repro::analysis
