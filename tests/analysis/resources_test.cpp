// Static resource prediction (SL510-SL513): triggering and clean
// cases for each code, plus the consistency pin that predict_resources
// agrees field-by-field with gpusim::resolve_config — the auditor must
// never promise an occupancy the simulator will not deliver.
#include <gtest/gtest.h>

#include "analysis/diagnostics.hpp"
#include "analysis/resources.hpp"
#include "gpusim/device.hpp"
#include "gpusim/timing.hpp"
#include "stencil/stencil.hpp"
#include "tuner/space.hpp"

namespace repro::analysis {
namespace {

const stencil::StencilDef& heat2d() {
  return stencil::get_stencil(stencil::StencilKind::kHeat2D);
}

TEST(Resources, PredictedSpillIsSL510) {
  // 2000 iteration points over 8 threads unrolls ~250 deep: way past
  // the 255-register physical budget.
  const hhc::TileSizes ts{.tT = 2, .tS1 = 4, .tS2 = 500, .tS3 = 1};
  const hhc::ThreadConfig thr{.n1 = 8, .n2 = 1, .n3 = 1};
  const ResourcePrediction rp =
      predict_resources(gpusim::gtx980(), heat2d(), ts, thr);
  ASSERT_TRUE(rp.fits);
  EXPECT_GT(rp.spilled_regs, 0);

  DiagnosticEngine e;
  EXPECT_TRUE(check_resources(gpusim::gtx980(), heat2d(), ts, thr, e));
  EXPECT_TRUE(e.has_code(Code::kAuditRegisterSpill));
  EXPECT_FALSE(e.has_errors());  // SL51x family is warnings only
}

TEST(Resources, OccupancyCliffIsSL511) {
  // A near-capacity tile: k_shared = 2, so 128 threads give only 8
  // resident warps against the 40 needed for full issue.
  const hhc::TileSizes ts{.tT = 2, .tS1 = 10, .tS2 = 448, .tS3 = 1};
  const hhc::ThreadConfig thr{.n1 = 128, .n2 = 1, .n3 = 1};
  DiagnosticEngine e;
  check_resources(gpusim::gtx980(), heat2d(), ts, thr, e);
  EXPECT_TRUE(e.has_code(Code::kAuditOccupancyCliff));
  EXPECT_FALSE(e.has_code(Code::kAuditRegisterSpill));
}

TEST(Resources, IdleThreadsIsSL512) {
  const stencil::StencilDef& jacobi1d =
      stencil::get_stencil(stencil::StencilKind::kJacobi1D);
  // Widest row of a {tT=2, tS1=4} hexagon is 4 points; a 32-thread
  // block leaves 28 threads idle at every barrier.
  const hhc::TileSizes ts{.tT = 2, .tS1 = 4, .tS2 = 1, .tS3 = 1};
  const hhc::ThreadConfig thr{.n1 = 32, .n2 = 1, .n3 = 1};
  DiagnosticEngine e;
  check_resources(gpusim::gtx980(), jacobi1d, ts, thr, e);
  EXPECT_TRUE(e.has_code(Code::kAuditIdleThreads));
}

TEST(Resources, ThreadCapBelowModelBoundIsSL513) {
  // A tiny tile with 1024 threads: shared memory admits dozens of
  // resident tiles but the SM thread capacity caps k at 2 — the
  // analytical model (shared-memory bound only) is optimistic here.
  const hhc::TileSizes ts{.tT = 2, .tS1 = 4, .tS2 = 32, .tS3 = 1};
  const hhc::ThreadConfig thr{.n1 = 1024, .n2 = 1, .n3 = 1};
  DiagnosticEngine e;
  check_resources(gpusim::gtx980(), heat2d(), ts, thr, e);
  EXPECT_TRUE(e.has_code(Code::kAuditResidencyBelowModel));
}

TEST(Resources, BalancedConfigurationIsClean) {
  // Shared memory binds (k = k_shared = 4), 32 resident warps keep
  // inflation under the warning gate, no spill, no idle threads.
  const hhc::TileSizes ts{.tT = 2, .tS1 = 8, .tS2 = 256, .tS3 = 1};
  const hhc::ThreadConfig thr{.n1 = 256, .n2 = 1, .n3 = 1};
  DiagnosticEngine e;
  EXPECT_TRUE(check_resources(gpusim::gtx980(), heat2d(), ts, thr, e));
  EXPECT_FALSE(e.has_code(Code::kAuditRegisterSpill));
  EXPECT_FALSE(e.has_code(Code::kAuditOccupancyCliff));
  EXPECT_FALSE(e.has_code(Code::kAuditIdleThreads));
  EXPECT_FALSE(e.has_code(Code::kAuditResidencyBelowModel));
}

TEST(Resources, UnfitTupleEmitsNothing) {
  // Hard infeasibility (tT odd) is the legality checker's job; the
  // resource pass must stay silent instead of duplicating SL301.
  const hhc::TileSizes ts{.tT = 3, .tS1 = 8, .tS2 = 32, .tS3 = 1};
  const hhc::ThreadConfig thr{.n1 = 32, .n2 = 1, .n3 = 1};
  const ResourcePrediction rp =
      predict_resources(gpusim::gtx980(), heat2d(), ts, thr);
  EXPECT_FALSE(rp.fits);
  DiagnosticEngine e;
  EXPECT_TRUE(check_resources(gpusim::gtx980(), heat2d(), ts, thr, e));
  EXPECT_TRUE(e.diagnostics().empty());
}

// The consistency pin: over the real enumeration lattice and several
// thread shapes, the prediction equals resolve_config on every shared
// field. Any drift between the two accountings would let the audit
// pass promise occupancies the simulator rejects (or vice versa).
TEST(Resources, PredictionMatchesResolveConfigOnFeasibleLattice) {
  struct Case {
    stencil::StencilKind kind;
    int dim;
  };
  const Case cases[] = {{stencil::StencilKind::kJacobi1D, 1},
                        {stencil::StencilKind::kHeat2D, 2},
                        {stencil::StencilKind::kHeat3D, 3}};
  const int threads_list[] = {32, 64, 128, 256};
  for (const gpusim::DeviceParams* dev :
       {&gpusim::gtx980(), &gpusim::titan_x()}) {
    for (const Case& c : cases) {
      const stencil::StencilDef& def = stencil::get_stencil(c.kind);
      tuner::EnumOptions opt;
      opt.with_tT_max(8).with_tS1_max(16).with_tS2_max(128).with_tS3_max(64);
      const auto lattice =
          tuner::enumerate_feasible(c.dim, dev->to_model_hardware(), opt);
      ASSERT_FALSE(lattice.empty());
      for (const hhc::TileSizes& ts : lattice) {
        for (const int threads : threads_list) {
          const hhc::ThreadConfig thr{.n1 = threads, .n2 = 1, .n3 = 1};
          const ResourcePrediction rp =
              predict_resources(*dev, def, ts, thr);
          const gpusim::ResolvedConfig rc =
              gpusim::resolve_config(*dev, def, c.dim, ts, threads);
          ASSERT_EQ(rp.fits, rc.feasible)
              << ts.to_string() << " threads=" << threads;
          if (!rp.fits) continue;
          EXPECT_EQ(rp.k, rc.k) << ts.to_string();
          EXPECT_EQ(rp.regs_per_thread, rc.regs_per_thread)
              << ts.to_string();
          EXPECT_EQ(rp.spilled_regs > 0, rc.spills) << ts.to_string();
        }
      }
    }
  }
}

}  // namespace
}  // namespace repro::analysis
