// Rendering parity and documentation goldens. The human and JSON
// renderers must agree on severity names, codes, lines, messages and
// hints for every severity; and the SLxxx code table published in
// README.md must list exactly the codes registered in diagnostics.cpp
// (a new code without a documented row — or a documented row whose
// code was removed — fails here).
#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "analysis/diagnostics.hpp"
#include "common/json.hpp"

namespace repro::analysis {
namespace {

std::vector<Diagnostic> sample_diags() {
  return {
      {Severity::kError, Code::kParseSyntax, "unexpected character", 3, {}},
      {Severity::kWarning, Code::kAuditRegisterSpill,
       "predicted 300 registers/thread", 0,
       "shrink the per-thread unrolled work"},
      {Severity::kNote, Code::kAuditDeadRegion,
       "certified dead region: \"quoted\" and \\slashed\\", 0, {}},
  };
}

TEST(RenderParity, HumanAndJsonAgreeAcrossSeverities) {
  const auto diags = sample_diags();
  const std::string human = render_human(diags, "prog.stencil");
  const std::string json_text = render_json(diags);

  const auto doc = json::parse(json_text);
  ASSERT_TRUE(doc.has_value()) << json_text;
  ASSERT_TRUE(doc->is_array());
  ASSERT_EQ(doc->size(), diags.size());

  for (std::size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    const json::Value& e = doc->items()[i];
    EXPECT_EQ(e.find("severity")->as_string(), to_string(d.severity));
    EXPECT_EQ(e.find("code")->as_string(), code_name(d.code));
    EXPECT_EQ(e.find("line")->as_int(), d.line);
    EXPECT_EQ(e.find("message")->as_string(), d.message);
    if (d.hint.empty()) {
      EXPECT_EQ(e.find("hint"), nullptr);
    } else {
      ASSERT_NE(e.find("hint"), nullptr);
      EXPECT_EQ(e.find("hint")->as_string(), d.hint);
    }

    // The human renderer prints the same severity word, code and
    // message on one line.
    const std::string expect_line = std::string(to_string(d.severity)) +
                                    ": [" + std::string(code_name(d.code)) +
                                    "] " + d.message;
    EXPECT_NE(human.find(expect_line), std::string::npos) << expect_line;
  }

  // Line anchoring and hints in the human form.
  EXPECT_NE(human.find("prog.stencil:3: error:"), std::string::npos);
  EXPECT_NE(human.find("  hint: shrink the per-thread unrolled work"),
            std::string::npos);
}

TEST(RenderParity, HintlessDiagnosticsSerializeExactlyAsBeforeAudit) {
  // Pre-audit byte-format pin: no "hint" key, no trailing hint line.
  const std::vector<Diagnostic> diags = {
      {Severity::kWarning, Code::kTilePartial, "partial tiles", 0, {}}};
  EXPECT_EQ(render_json(diags),
            "[\n  {\"severity\": \"warning\", \"code\": \"SL308\", "
            "\"line\": 0, \"message\": \"partial tiles\"}\n]");
  EXPECT_EQ(render_human(diags), "warning: [SL308] partial tiles\n");
}

TEST(Golden, ReadmeCodeTableMatchesRegisteredCodes) {
  const std::string path = std::string(REPRO_SOURCE_DIR) + "/README.md";
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open()) << path;
  std::set<std::string> documented;
  std::string line;
  while (std::getline(in, line)) {
    // Table rows look like "| SL501 | error | ... |".
    if (line.rfind("| SL", 0) != 0) continue;
    const std::size_t end = line.find(' ', 2);
    ASSERT_NE(end, std::string::npos) << line;
    documented.insert(line.substr(2, end - 2));
  }

  std::set<std::string> registered;
  for (const Code c : all_codes()) {
    registered.insert(std::string(code_name(c)));
  }

  for (const std::string& code : registered) {
    EXPECT_TRUE(documented.count(code) == 1)
        << code << " is registered in diagnostics.cpp but missing from "
        << "the README code table";
  }
  for (const std::string& code : documented) {
    EXPECT_TRUE(registered.count(code) == 1)
        << code << " is documented in README but not registered in "
        << "diagnostics.cpp";
  }
}

}  // namespace
}  // namespace repro::analysis
