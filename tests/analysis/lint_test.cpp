#include "analysis/lint.hpp"

#include <gtest/gtest.h>

#include "analysis/diagnostics.hpp"
#include "gpusim/device.hpp"

namespace repro::analysis {
namespace {

model::HardwareParams hw() { return gpusim::gtx980().to_model_hardware(); }

constexpr const char* kGoodSpec = R"(
stencil Lint2D {
  dim 2
  tap (0,0)   0.2
  tap (-1,0)  0.2
  tap (1,0)   0.2
  tap (0,-1)  0.2
  tap (0,1)   0.2
}
)";

constexpr const char* kWideSpec = R"(
stencil Wide1D {
  dim 1
  tap (-2) 0.25
  tap (0)  0.5
  tap (2)  0.25
}
)";

TEST(Lint, CleanProgramAndConfigurationPass) {
  LintOptions opt;
  opt.ts = hhc::TileSizes{.tT = 4, .tS1 = 8, .tS2 = 32, .tS3 = 1};
  opt.hw = hw();
  DiagnosticEngine e;
  const LintResult res = lint_stencil_text(kGoodSpec, opt, e);
  EXPECT_TRUE(res.ok);
  ASSERT_TRUE(res.def.has_value());
  ASSERT_TRUE(res.cone.has_value());
  EXPECT_EQ(res.cone->max_radius, 1);
  EXPECT_FALSE(e.has_errors());
}

// The four acceptance scenarios of the lint subsystem: each must
// produce an error diagnostic with a stable code (and, where the
// problem lives in the source text, its line).

TEST(Lint, AsymmetricTapsAreSL104WithLine) {
  DiagnosticEngine e;
  const LintResult res = lint_stencil_text(R"(stencil Bad {
  dim 1
  tap (0) 0.5
  tap (1) 0.5
})",
                                           {}, e);
  EXPECT_FALSE(res.ok);
  EXPECT_FALSE(res.def.has_value());
  ASSERT_TRUE(e.has_code(Code::kParseAsymmetricTaps));
  for (const Diagnostic& d : e.diagnostics()) {
    if (d.code == Code::kParseAsymmetricTaps) {
      EXPECT_EQ(d.severity, Severity::kError);
      EXPECT_EQ(d.line, 4);  // the tap without a mirror
    }
  }
}

TEST(Lint, SlopeIllegalTileIsSL302) {
  LintOptions opt;
  opt.ts = hhc::TileSizes{.tT = 4, .tS1 = 1, .tS2 = 1, .tS3 = 1};
  opt.hw = hw();
  DiagnosticEngine e;
  const LintResult res = lint_stencil_text(kWideSpec, opt, e);
  EXPECT_FALSE(res.ok);
  EXPECT_TRUE(e.has_code(Code::kTileSlope));
}

TEST(Lint, FootprintOver48KBIsSL303) {
  LintOptions opt;
  opt.ts = hhc::TileSizes{.tT = 2, .tS1 = 96, .tS2 = 512, .tS3 = 1};
  opt.hw = hw();
  DiagnosticEngine e;
  const LintResult res = lint_stencil_text(kGoodSpec, opt, e);
  EXPECT_FALSE(res.ok);
  EXPECT_TRUE(e.has_code(Code::kTileBlockLimit));
}

TEST(Lint, NonWarpAlignedExtentIsSL305) {
  LintOptions opt;
  opt.ts = hhc::TileSizes{.tT = 4, .tS1 = 8, .tS2 = 40, .tS3 = 1};
  opt.hw = hw();
  DiagnosticEngine e;
  const LintResult res = lint_stencil_text(kGoodSpec, opt, e);
  EXPECT_FALSE(res.ok);
  EXPECT_TRUE(e.has_code(Code::kTileWarpAlign));
}

TEST(Lint, RadiusFlowsFromTapsToLegality) {
  // The radius-2 stencil makes tS1 = 1 illegal but tS1 = 2 legal.
  LintOptions opt;
  opt.ts = hhc::TileSizes{.tT = 4, .tS1 = 2, .tS2 = 1, .tS3 = 1};
  opt.hw = hw();
  DiagnosticEngine e;
  const LintResult res = lint_stencil_text(kWideSpec, opt, e);
  EXPECT_TRUE(res.ok);
  ASSERT_TRUE(res.cone.has_value());
  EXPECT_EQ(res.cone->max_radius, 2);
}

TEST(Lint, DefEntryPointWorksOnCatalogue) {
  LintOptions opt;
  opt.ts = hhc::TileSizes{.tT = 4, .tS1 = 8, .tS2 = 32, .tS3 = 1};
  opt.thr = hhc::ThreadConfig{64, 2, 1};
  opt.problem =
      stencil::ProblemSize{.dim = 2, .S = {4096, 4096, 0}, .T = 1024};
  opt.hw = hw();
  for (const stencil::StencilDef& d : stencil::all_stencils()) {
    if (d.dim != 2) continue;
    DiagnosticEngine e;
    const LintResult res = lint_stencil_def(d, opt, e);
    EXPECT_FALSE(e.has_errors()) << d.name << "\n"
                                 << render_human(e.diagnostics());
    EXPECT_TRUE(res.ok) << d.name;
  }
}

TEST(Lint, ParserWarningsSurfaceThroughLint) {
  DiagnosticEngine e;
  const LintResult res = lint_stencil_text(R"(stencil Dup {
  dim 1
  tap (0) 0.5
  tap (0) 0.25
  tap (1) 0.0
  tap (-1) 0.25
})",
                                           {}, e);
  EXPECT_TRUE(res.ok);  // warnings only
  EXPECT_TRUE(e.has_code(Code::kParseDuplicateTap));
  EXPECT_TRUE(e.has_code(Code::kParseZeroWeightTap));
  EXPECT_EQ(e.count(Severity::kError), 0u);
}

TEST(Lint, JsonOutputCarriesCodesAndLines) {
  DiagnosticEngine e;
  lint_stencil_text("stencil X {\n dim 2\n frobnicate 3\n}", {}, e);
  const std::string json = render_json(e.diagnostics());
  EXPECT_NE(json.find("\"code\": \"SL101\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 3"), std::string::npos);
}

}  // namespace
}  // namespace repro::analysis
