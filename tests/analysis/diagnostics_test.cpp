#include "analysis/diagnostics.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace repro::analysis {
namespace {

TEST(Diagnostics, EngineCollectsAndCounts) {
  DiagnosticEngine e;
  EXPECT_TRUE(e.empty());
  EXPECT_FALSE(e.has_errors());

  e.note(Code::kDepNoCenter, "fyi");
  e.warn(Code::kTileLowOccupancy, "careful", 0);
  e.error(Code::kParseSyntax, "boom", 3);

  EXPECT_EQ(e.size(), 3u);
  EXPECT_EQ(e.count(Severity::kNote), 1u);
  EXPECT_EQ(e.count(Severity::kWarning), 1u);
  EXPECT_EQ(e.count(Severity::kError), 1u);
  EXPECT_TRUE(e.has_errors());
  EXPECT_TRUE(e.has_code(Code::kParseSyntax));
  EXPECT_FALSE(e.has_code(Code::kTileSlope));
  EXPECT_EQ(e.diagnostics()[2].line, 3);

  e.clear();
  EXPECT_TRUE(e.empty());
}

TEST(Diagnostics, CodeNamesAreStableAndUnique) {
  std::set<std::string> names;
  for (const Code c : all_codes()) {
    const std::string name(code_name(c));
    EXPECT_EQ(name.substr(0, 2), "SL");
    EXPECT_EQ(name.size(), 5u);
    EXPECT_TRUE(names.insert(name).second) << name << " duplicated";
    EXPECT_FALSE(code_summary(c).empty());
  }
  // The acceptance-critical codes exist under their documented names.
  EXPECT_EQ(code_name(Code::kParseAsymmetricTaps), "SL104");
  EXPECT_EQ(code_name(Code::kTileSlope), "SL302");
  EXPECT_EQ(code_name(Code::kTileBlockLimit), "SL303");
  EXPECT_EQ(code_name(Code::kTileWarpAlign), "SL305");
  EXPECT_EQ(code_name(Code::kEnumStep), "SL310");
}

TEST(Diagnostics, HumanRenderingIsCompilerStyle) {
  DiagnosticEngine e;
  e.error(Code::kParseSyntax, "unknown key 'frobnicate'", 3);
  e.warn(Code::kTileLowOccupancy, "k=1");
  const std::string out = render_human(e.diagnostics(), "foo.stencil");
  EXPECT_NE(out.find("foo.stencil:3: error: [SL101] unknown key"),
            std::string::npos);
  // Line-less diagnostics omit the source position.
  EXPECT_NE(out.find("warning: [SL306] k=1"), std::string::npos);
  EXPECT_EQ(out.find("foo.stencil:0"), std::string::npos);
}

TEST(Diagnostics, JsonRenderingIsWellFormed) {
  DiagnosticEngine e;
  EXPECT_EQ(render_json(e.diagnostics()), "[]");

  e.error(Code::kTileBlockLimit, "a \"quoted\"\nmessage", 7);
  const std::string out = render_json(e.diagnostics());
  EXPECT_NE(out.find("\"code\": \"SL303\""), std::string::npos);
  EXPECT_NE(out.find("\"severity\": \"error\""), std::string::npos);
  EXPECT_NE(out.find("\"line\": 7"), std::string::npos);
  EXPECT_NE(out.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(out.find("\\n"), std::string::npos);
  // No raw newline inside the escaped message.
  EXPECT_EQ(out.find("a \"quoted\""), std::string::npos);
}

TEST(Diagnostics, SeverityNames) {
  EXPECT_EQ(to_string(Severity::kNote), "note");
  EXPECT_EQ(to_string(Severity::kWarning), "warning");
  EXPECT_EQ(to_string(Severity::kError), "error");
}

TEST(Diagnostics, IdenticalFindingsCollapseToOne) {
  // The parser, the linter and the auditor can each re-derive the
  // same finding; one report per (code, line, message) is enough.
  DiagnosticEngine e;
  e.warn(Code::kTileLowOccupancy, "k=1", 4);
  e.warn(Code::kTileLowOccupancy, "k=1", 4);
  e.warn(Code::kTileLowOccupancy, "k=1", 4);
  EXPECT_EQ(e.diagnostics().size(), 1u);
  EXPECT_EQ(e.count(Severity::kWarning), 1u);
}

TEST(Diagnostics, DedupKeyIsCodeLineAndMessage) {
  DiagnosticEngine e;
  e.warn(Code::kTileLowOccupancy, "k=1", 4);
  e.warn(Code::kTileLowOccupancy, "k=1", 5);    // different line
  e.warn(Code::kTileLowOccupancy, "k=2", 4);    // different message
  e.warn(Code::kTilePartial, "k=1", 4);         // different code
  EXPECT_EQ(e.diagnostics().size(), 4u);
}

TEST(Diagnostics, DedupKeepsTheFirstReport) {
  DiagnosticEngine e;
  e.add({Severity::kWarning, Code::kTileLowOccupancy, "k=1", 4,
         "the original hint"});
  e.add({Severity::kNote, Code::kTileLowOccupancy, "k=1", 4, {}});
  ASSERT_EQ(e.diagnostics().size(), 1u);
  EXPECT_EQ(e.diagnostics()[0].severity, Severity::kWarning);
  EXPECT_EQ(e.diagnostics()[0].hint, "the original hint");
}

TEST(Diagnostics, HintsRenderInBothForms) {
  DiagnosticEngine e;
  e.add({Severity::kError, Code::kAuditTapBeyondRadius, "halo overrun", 0,
         "declare radius >= 2"});
  const std::string human = render_human(e.diagnostics());
  EXPECT_NE(human.find("error: [SL501] halo overrun"), std::string::npos);
  EXPECT_NE(human.find("  hint: declare radius >= 2"), std::string::npos);
  const std::string json = render_json(e.diagnostics());
  EXPECT_NE(json.find("\"hint\": \"declare radius >= 2\""),
            std::string::npos);
}

TEST(Diagnostics, AuditCodesAreRegistered) {
  EXPECT_EQ(code_name(Code::kAuditTapBeyondRadius), "SL501");
  EXPECT_EQ(code_name(Code::kAuditAmplification), "SL506");
  EXPECT_EQ(code_name(Code::kAuditRegisterSpill), "SL510");
  EXPECT_EQ(code_name(Code::kAuditResidencyBelowModel), "SL513");
  EXPECT_EQ(code_name(Code::kAuditDeviceInvariant), "SL520");
  EXPECT_EQ(code_name(Code::kAuditCalibrationSuspect), "SL521");
  EXPECT_EQ(code_name(Code::kAuditDeadRegion), "SL530");
  EXPECT_EQ(code_name(Code::kAuditEmptySweep), "SL531");
}

}  // namespace
}  // namespace repro::analysis
