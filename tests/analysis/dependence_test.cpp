#include "analysis/dependence.hpp"

#include <gtest/gtest.h>

#include "stencil/stencil.hpp"

namespace repro::analysis {
namespace {

using stencil::StencilDef;
using stencil::Tap;

StencilDef make_def(int dim, std::vector<Tap> taps) {
  StencilDef d;
  d.kind = stencil::StencilKind::kCustom;
  d.name = "test";
  d.dim = dim;
  d.taps = std::move(taps);
  return d;
}

TEST(Dependence, ExtractsPerDimensionRadii) {
  const StencilDef d = make_def(
      2, {Tap{{0, 0, 0}, 0.2}, Tap{{2, 0, 0}, 0.2}, Tap{{-2, 0, 0}, 0.2},
          Tap{{0, 1, 0}, 0.2}, Tap{{0, -1, 0}, 0.2}});
  DiagnosticEngine e;
  const DependenceCone cone = analyze_dependences(d, e);
  EXPECT_EQ(cone.dim, 2);
  EXPECT_EQ(cone.radius[0], 2);
  EXPECT_EQ(cone.radius[1], 1);
  EXPECT_EQ(cone.radius[2], 0);
  EXPECT_EQ(cone.max_radius, 2);
  EXPECT_TRUE(cone.symmetric);
  EXPECT_TRUE(cone.has_center);
  EXPECT_EQ(required_slope(cone), 2);
  EXPECT_FALSE(e.has_errors());
  // Anisotropic radii are worth a note, not an error.
  EXPECT_TRUE(e.has_code(Code::kDepAnisotropic));
}

TEST(Dependence, CatalogueStencilsAreClean) {
  for (const StencilDef& d : stencil::all_stencils()) {
    DiagnosticEngine e;
    const DependenceCone cone = analyze_dependences(d, e);
    EXPECT_FALSE(e.has_errors()) << d.name;
    EXPECT_TRUE(cone.symmetric) << d.name;
    EXPECT_EQ(cone.max_radius, d.radius) << d.name;
  }
}

TEST(Dependence, DiagnosesAsymmetricTapSet) {
  const StencilDef d =
      make_def(1, {Tap{{0, 0, 0}, 0.5}, Tap{{1, 0, 0}, 0.5}});
  DiagnosticEngine e;
  const DependenceCone cone = analyze_dependences(d, e);
  EXPECT_FALSE(cone.symmetric);
  EXPECT_TRUE(e.has_errors());
  EXPECT_TRUE(e.has_code(Code::kDepAsymmetric));
  // The message names the offending tap and its missing mirror.
  bool found = false;
  for (const Diagnostic& diag : e.diagnostics()) {
    if (diag.code == Code::kDepAsymmetric &&
        diag.message.find("(1)") != std::string::npos &&
        diag.message.find("(-1)") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Dependence, DiagnosesTapBeyondDim) {
  const StencilDef d =
      make_def(1, {Tap{{0, 1, 0}, 0.5}, Tap{{0, -1, 0}, 0.5}});
  DiagnosticEngine e;
  analyze_dependences(d, e);
  EXPECT_TRUE(e.has_code(Code::kDepBeyondDim));
  EXPECT_TRUE(e.has_errors());
}

TEST(Dependence, DiagnosesEmptyTapSet) {
  const StencilDef d = make_def(2, {});
  DiagnosticEngine e;
  const DependenceCone cone = analyze_dependences(d, e);
  EXPECT_TRUE(e.has_code(Code::kDepNoTaps));
  EXPECT_EQ(cone.tap_count, 0u);
  // Radius still defaults to the model's minimum of 1.
  EXPECT_EQ(required_slope(cone), 1);
}

TEST(Dependence, NotesMissingCenterTap) {
  const StencilDef d =
      make_def(1, {Tap{{1, 0, 0}, 0.5}, Tap{{-1, 0, 0}, 0.5}});
  DiagnosticEngine e;
  const DependenceCone cone = analyze_dependences(d, e);
  EXPECT_FALSE(cone.has_center);
  EXPECT_TRUE(e.has_code(Code::kDepNoCenter));
  EXPECT_FALSE(e.has_errors());
}

}  // namespace
}  // namespace repro::analysis
