#include "analysis/legality.hpp"

#include <gtest/gtest.h>

#include "gpusim/device.hpp"
#include "hhc/footprint.hpp"
#include "model/talg.hpp"
#include "stencil/stencil.hpp"

namespace repro::analysis {
namespace {

model::HardwareParams hw() { return gpusim::gtx980().to_model_hardware(); }

TilingCheckInput base_input() {
  TilingCheckInput in;
  in.dim = 2;
  in.radius = 1;
  in.ts = {.tT = 4, .tS1 = 8, .tS2 = 32, .tS3 = 1};
  in.hw = hw();
  return in;
}

TEST(Legality, CleanConfigurationPasses) {
  DiagnosticEngine e;
  EXPECT_TRUE(check_tiling(base_input(), e));
  EXPECT_FALSE(e.has_errors());
}

TEST(Legality, OddTimeTileIsSL301) {
  auto in = base_input();
  in.ts.tT = 3;
  DiagnosticEngine e;
  EXPECT_FALSE(check_tiling(in, e));
  EXPECT_TRUE(e.has_code(Code::kTileTimeOdd));
  EXPECT_FALSE(eqn31_feasible(in.dim, in.ts, in.hw, in.radius));
}

TEST(Legality, SlopeViolationIsSL302) {
  auto in = base_input();
  in.radius = 2;
  in.ts.tS1 = 1;
  DiagnosticEngine e;
  EXPECT_FALSE(check_tiling(in, e));
  EXPECT_TRUE(e.has_code(Code::kTileSlope));
  EXPECT_FALSE(eqn31_feasible(in.dim, in.ts, in.hw, in.radius));
}

TEST(Legality, FootprintOverBlockLimitIsSL303) {
  auto in = base_input();
  in.ts = {.tT = 2, .tS1 = 96, .tS2 = 512, .tS3 = 1};
  ASSERT_GT(hhc::shared_words_per_tile(2, in.ts, 1),
            in.hw.max_shared_words_per_block);
  DiagnosticEngine e;
  EXPECT_FALSE(check_tiling(in, e));
  EXPECT_TRUE(e.has_code(Code::kTileBlockLimit));
  // This one also exceeds M_SM entirely.
  EXPECT_TRUE(e.has_code(Code::kTileSmCapacity));
  EXPECT_FALSE(eqn31_feasible(in.dim, in.ts, in.hw, in.radius));
}

TEST(Legality, NonWarpAlignedInnerExtentIsSL305) {
  auto in = base_input();
  in.ts.tS2 = 48;
  DiagnosticEngine e;
  EXPECT_FALSE(check_tiling(in, e));
  EXPECT_TRUE(e.has_code(Code::kTileWarpAlign));
  // ... but warp alignment is a lattice property, not an Eqn 31
  // resource bound: the enumerator guarantees it by stepping.
  EXPECT_TRUE(eqn31_feasible(in.dim, in.ts, in.hw, in.radius));

  auto in3 = base_input();
  in3.dim = 3;
  in3.ts = {.tT = 2, .tS1 = 4, .tS2 = 8, .tS3 = 48};
  DiagnosticEngine e3;
  EXPECT_FALSE(check_tiling(in3, e3));
  EXPECT_TRUE(e3.has_code(Code::kTileWarpAlign));
}

TEST(Legality, NonPositiveExtentIsSL311) {
  auto in = base_input();
  in.ts.tS2 = 0;
  DiagnosticEngine e;
  EXPECT_FALSE(check_tiling(in, e));
  EXPECT_TRUE(e.has_code(Code::kTileExtent));
  EXPECT_FALSE(eqn31_feasible(in.dim, in.ts, in.hw, in.radius));
}

TEST(Legality, LowOccupancyIsAWarningNotAnError) {
  // On the paper's devices the 48 KB rule forces k >= 2; craft a
  // device whose per-block limit equals M_SM so k = 1 is reachable.
  auto in = base_input();
  in.hw.max_shared_words_per_block = in.hw.shared_words_per_sm;
  in.ts = {.tT = 2, .tS1 = 96, .tS2 = 96, .tS3 = 1};
  const std::int64_t m = hhc::shared_words_per_tile(2, in.ts, 1);
  ASSERT_GT(m, in.hw.shared_words_per_sm / 2);
  ASSERT_LE(m, in.hw.shared_words_per_sm);
  DiagnosticEngine e;
  EXPECT_TRUE(check_tiling(in, e));  // warnings do not fail the check
  EXPECT_TRUE(e.has_code(Code::kTileLowOccupancy));
  EXPECT_EQ(hyperthreading_bound(in.dim, in.ts, in.hw, in.radius), 1);
}

TEST(Legality, RegisterPressureIsSL307) {
  auto in = base_input();
  in.hw.regs_per_sm = 1024;  // tiny register file provokes the estimate
  in.def = &stencil::get_stencil(stencil::StencilKind::kJacobi2D);
  in.thr = hhc::ThreadConfig{64, 1, 1};
  in.ts = {.tT = 4, .tS1 = 32, .tS2 = 32, .tS3 = 1};
  DiagnosticEngine e;
  EXPECT_TRUE(check_tiling(in, e));
  EXPECT_TRUE(e.has_code(Code::kTileRegisterPressure));
}

TEST(Legality, PartialTilesAreSL308Warnings) {
  auto in = base_input();
  in.problem = stencil::ProblemSize{.dim = 2, .S = {1000, 1000, 0}, .T = 100};
  // pitch = 2*8 + 4 = 20 divides 1000; tS2 = 32 does not divide 1000.
  DiagnosticEngine e;
  EXPECT_TRUE(check_tiling(in, e));
  EXPECT_TRUE(e.has_code(Code::kTilePartial));

  // A perfectly dividing problem stays quiet.
  auto in2 = base_input();
  in2.problem = stencil::ProblemSize{.dim = 2, .S = {1000, 960, 0}, .T = 100};
  DiagnosticEngine e2;
  EXPECT_TRUE(check_tiling(in2, e2));
  EXPECT_FALSE(e2.has_code(Code::kTilePartial));
}

TEST(Legality, ThreadConfigChecksAreSL309) {
  auto in = base_input();
  in.thr = hhc::ThreadConfig{64, 8, 4};  // 2048 threads
  DiagnosticEngine e;
  EXPECT_FALSE(check_tiling(in, e));
  EXPECT_TRUE(e.has_code(Code::kThreadConfig));

  auto in2 = base_input();
  in2.thr = hhc::ThreadConfig{48, 1, 1};  // partial warp: warning only
  DiagnosticEngine e2;
  EXPECT_TRUE(check_tiling(in2, e2));
  EXPECT_TRUE(e2.has_code(Code::kThreadConfig));
}

TEST(Legality, Eqn31AgreesWithTheModelsTileFits) {
  // For every lattice-legal shape the analysis predicate and the
  // model's shared-memory notion of fitting must agree — one source
  // of truth (plus the tS1 >= r slope bound the model checks at its
  // call sites).
  const auto hardware = hw();
  for (std::int64_t r : {1, 2}) {
    for (std::int64_t tT = 2; tT <= 32; tT += 2) {
      for (std::int64_t tS1 = r; tS1 <= 64; tS1 += 7) {
        for (std::int64_t tS2 = 32; tS2 <= 512; tS2 += 96) {
          const hhc::TileSizes ts{.tT = tT, .tS1 = tS1, .tS2 = tS2,
                                  .tS3 = 1};
          EXPECT_EQ(eqn31_feasible(2, ts, hardware, r),
                    model::tile_fits(2, ts, hardware, r) && ts.tS1 >= r)
              << ts.to_string() << " r=" << r;
        }
      }
    }
  }
}

}  // namespace
}  // namespace repro::analysis
