#include "common/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

namespace repro::json {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parse("null")->is_null());
  EXPECT_EQ(parse("true")->as_bool(), true);
  EXPECT_EQ(parse("false")->as_bool(), false);
  EXPECT_EQ(parse("42")->as_int(), 42);
  EXPECT_EQ(parse("-7")->as_int(), -7);
  EXPECT_TRUE(parse("42")->is_int());
  EXPECT_TRUE(parse("42.5")->is_double());
  EXPECT_DOUBLE_EQ(parse("42.5")->as_double(), 42.5);
  EXPECT_DOUBLE_EQ(parse("1e3")->as_double(), 1000.0);
  EXPECT_EQ(parse("\"hi\"")->as_string(), "hi");
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parse(R"("a\"b\\c\nd\te")")->as_string(), "a\"b\\c\nd\te");
  EXPECT_EQ(parse(R"("Aé")")->as_string(), "A\xc3\xa9");
}

TEST(JsonParse, Containers) {
  const auto v = parse(R"({"a":[1,2,3],"b":{"c":true}})");
  ASSERT_TRUE(v && v->is_object());
  const Value* a = v->find("a");
  ASSERT_TRUE(a && a->is_array());
  EXPECT_EQ(a->size(), 3u);
  EXPECT_EQ(a->items()[2].as_int(), 3);
  const Value* b = v->find("b");
  ASSERT_TRUE(b && b->is_object());
  EXPECT_TRUE(b->find("c")->as_bool());
}

TEST(JsonParse, RejectsMalformedInput) {
  std::string err;
  EXPECT_EQ(parse("", &err), std::nullopt);
  EXPECT_EQ(parse("{", &err), std::nullopt);
  EXPECT_EQ(parse("[1,]", &err), std::nullopt);
  EXPECT_EQ(parse("{\"a\":}", &err), std::nullopt);
  EXPECT_EQ(parse("tru", &err), std::nullopt);
  EXPECT_EQ(parse("1.5.2", &err), std::nullopt);
  // Trailing garbage after a complete document is an error, not a
  // silent truncation.
  EXPECT_EQ(parse("{} x", &err), std::nullopt);
  EXPECT_NE(err.find("offset"), std::string::npos);
}

TEST(JsonParse, RejectsRunawayNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_EQ(parse(deep), std::nullopt);
}

TEST(JsonDump, IsByteStableAndCompact) {
  Value o = Value::object();
  o.set("b", 2);
  o.set("a", Value::array());
  o.set("s", "x\"y");
  EXPECT_EQ(o.dump(), R"({"b":2,"a":[],"s":"x\"y"})");  // insertion order
  EXPECT_EQ(o.dump_canonical(), R"({"a":[],"b":2,"s":"x\"y"})");  // sorted
}

TEST(JsonDump, DoublesRoundTripShortest) {
  EXPECT_EQ(Value(0.1).dump(), "0.1");
  EXPECT_EQ(Value(1e300).dump(), "1e+300");
  EXPECT_EQ(Value(2.0).dump(), "2");
  // Round trip: shortest form parses back to the identical bits.
  const double x = 0.0007004603049460344;
  EXPECT_EQ(parse(Value(x).dump())->as_double(), x);
}

TEST(JsonDump, NonFiniteDoublesBecomeNull) {
  EXPECT_EQ(Value(std::numeric_limits<double>::infinity()).dump(), "null");
  EXPECT_EQ(Value(std::nan("")).dump(), "null");
}

TEST(JsonValue, SetReplacesInPlace) {
  Value o = Value::object();
  o.set("a", 1);
  o.set("b", 2);
  o.set("a", 3);  // replaced, keeps its slot
  EXPECT_EQ(o.dump(), R"({"a":3,"b":2})");
  EXPECT_EQ(o.find("a")->as_int(), 3);
  EXPECT_EQ(o.find("missing"), nullptr);
}

TEST(JsonRoundTrip, ParseDumpParseIsStable) {
  const std::string text =
      R"({"v":1,"id":"r1","nested":{"xs":[1,2.5,"three",null,true]}})";
  const auto v = parse(text);
  ASSERT_TRUE(v);
  const std::string dumped = v->dump();
  EXPECT_EQ(dumped, text);
  EXPECT_EQ(parse(dumped)->dump(), dumped);
}

}  // namespace
}  // namespace repro::json
