#include "common/cli.hpp"

#include <gtest/gtest.h>

namespace repro {
namespace {

TEST(Cli, ParsesKeyValueForms) {
  const char* argv[] = {"prog", "--alpha=3", "--beta", "7", "--flag"};
  const CliArgs args(5, argv);
  EXPECT_EQ(args.get_int_or("alpha", 0), 3);
  EXPECT_EQ(args.get_int_or("beta", 0), 7);
  EXPECT_TRUE(args.has_flag("flag"));
  EXPECT_FALSE(args.has_flag("missing"));
}

TEST(Cli, DefaultsWhenMissing) {
  const char* argv[] = {"prog"};
  const CliArgs args(1, argv);
  EXPECT_EQ(args.get_int_or("n", 42), 42);
  EXPECT_DOUBLE_EQ(args.get_double_or("x", 1.5), 1.5);
  EXPECT_EQ(args.get_or("s", "dflt"), "dflt");
}

TEST(Cli, PositionalArguments) {
  const char* argv[] = {"prog", "pos1", "--k=v", "pos2"};
  const CliArgs args(4, argv);
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "pos1");
  EXPECT_EQ(args.positional()[1], "pos2");
  EXPECT_EQ(args.program_name(), "prog");
}

TEST(Cli, DoubleParsing) {
  const char* argv[] = {"prog", "--delta=0.25"};
  const CliArgs args(2, argv);
  EXPECT_DOUBLE_EQ(args.get_double_or("delta", 0.0), 0.25);
}

TEST(Cli, FlagFollowedByFlagIsBare) {
  const char* argv[] = {"prog", "--a", "--b=2"};
  const CliArgs args(3, argv);
  EXPECT_TRUE(args.has_flag("a"));
  EXPECT_EQ(args.get_or("a", "x"), "");
  EXPECT_EQ(args.get_int_or("b", 0), 2);
}

}  // namespace
}  // namespace repro
