#include "common/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace repro {
namespace {

TEST(ThreadPool, JobsResolvesToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_GE(pool.jobs(), 1);
  ThreadPool pool_neg(-5);
  EXPECT_GE(pool_neg.jobs(), 1);
  ThreadPool pool4(4);
  EXPECT_EQ(pool4.jobs(), 4);
}

TEST(ThreadPool, DefaultJobsHonorsEnvVar) {
  ::setenv("REPRO_JOBS", "3", 1);
  EXPECT_EQ(default_jobs(), 3);
  ::setenv("REPRO_JOBS", "not-a-number", 1);
  EXPECT_GE(default_jobs(), 1);  // falls back to hardware
  ::setenv("REPRO_JOBS", "0", 1);
  EXPECT_GE(default_jobs(), 1);  // non-positive rejected
  ::unsetenv("REPRO_JOBS");
  EXPECT_GE(default_jobs(), 1);
}

TEST(ThreadPool, ForEachIndexVisitsEveryIndexExactlyOnce) {
  for (const int jobs : {1, 2, 4, 8}) {
    for (const std::size_t grain : {std::size_t{1}, std::size_t{3},
                                    std::size_t{64}, std::size_t{1000}}) {
      ThreadPool pool(jobs);
      constexpr std::size_t kN = 237;
      std::vector<std::atomic<int>> visits(kN);
      pool.for_each_index(kN, grain,
                          [&](std::size_t i) { visits[i].fetch_add(1); });
      for (std::size_t i = 0; i < kN; ++i) {
        EXPECT_EQ(visits[i].load(), 1)
            << "index " << i << " jobs=" << jobs << " grain=" << grain;
      }
    }
  }
}

TEST(ThreadPool, ForEachIndexEmptyRangeIsANoop) {
  ThreadPool pool(4);
  bool called = false;
  pool.for_each_index(0, 16, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, PoolIsReusableAcrossCalls) {
  ThreadPool pool(3);
  for (int round = 0; round < 5; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.for_each_index(100, 7, [&](std::size_t i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 100u * 99u / 2u);
  }
}

TEST(ThreadPool, TaskExceptionIsRethrownToCaller) {
  for (const int jobs : {1, 4}) {
    ThreadPool pool(jobs);
    EXPECT_THROW(
        pool.for_each_index(64, 1,
                            [&](std::size_t i) {
                              if (i == 13) throw std::runtime_error("boom");
                            }),
        std::runtime_error);
    // The pool must still work after a failed batch.
    std::atomic<int> count{0};
    pool.for_each_index(10, 2, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 10);
  }
}

TEST(ParallelMap, MatchesSerialComputation) {
  std::vector<double> expected(501);
  for (std::size_t i = 0; i < expected.size(); ++i) {
    expected[i] = static_cast<double>(i) * 1.5 + 1.0;
  }
  for (const int jobs : {1, 2, 7}) {
    ThreadPool pool(jobs);
    const auto got = parallel_map<double>(
        pool, expected.size(), 16,
        [](std::size_t i) { return static_cast<double>(i) * 1.5 + 1.0; });
    EXPECT_EQ(got, expected) << "jobs=" << jobs;
  }
}

// String concatenation is associative but NOT commutative: if chunks
// were merged in completion order instead of index order, the result
// would vary run to run. This pins the determinism contract.
TEST(ParallelReduce, MergesChunksInIndexOrder) {
  constexpr std::size_t kN = 199;
  std::string expected;
  for (std::size_t i = 0; i < kN; ++i) expected += std::to_string(i) + ",";
  for (const int jobs : {1, 2, 5, 16}) {
    for (const std::size_t grain : {std::size_t{1}, std::size_t{8},
                                    std::size_t{300}}) {
      ThreadPool pool(jobs);
      const std::string got = parallel_reduce<std::string>(
          pool, kN, grain, std::string{},
          [](std::string& acc, std::size_t i) {
            acc += std::to_string(i) + ",";
          },
          [](std::string a, std::string b) { return a + b; });
      EXPECT_EQ(got, expected) << "jobs=" << jobs << " grain=" << grain;
    }
  }
}

TEST(ParallelReduce, EmptyRangeReturnsInit) {
  ThreadPool pool(4);
  const int got = parallel_reduce<int>(
      pool, 0, 8, 42, [](int& acc, std::size_t) { ++acc; },
      [](int a, int b) { return a + b; });
  EXPECT_EQ(got, 42);
}

TEST(ParallelReduce, SumMatchesSerialAtAnyJobCount) {
  constexpr std::size_t kN = 1000;
  const long long expected = static_cast<long long>(kN) * (kN - 1) / 2;
  for (const int jobs : {1, 3, 8}) {
    ThreadPool pool(jobs);
    const long long got = parallel_reduce<long long>(
        pool, kN, 13, 0LL,
        [](long long& acc, std::size_t i) {
          acc += static_cast<long long>(i);
        },
        [](long long a, long long b) { return a + b; });
    EXPECT_EQ(got, expected) << "jobs=" << jobs;
  }
}

TEST(BoundedTaskQueue, RunsEveryAcceptedTask) {
  std::atomic<int> ran{0};
  {
    BoundedTaskQueue q(2, 8);
    EXPECT_EQ(q.workers(), 2);
    EXPECT_EQ(q.depth(), 8u);
    for (int i = 0; i < 20; ++i) {
      while (!q.try_submit([&] { ran.fetch_add(1); },
                           std::chrono::milliseconds(100))) {
      }
    }
  }  // destructor drains the queue
  EXPECT_EQ(ran.load(), 20);
}

TEST(BoundedTaskQueue, RejectsWhenFullInsteadOfBlocking) {
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  BoundedTaskQueue q(1, 1);
  // Occupy the single worker...
  ASSERT_TRUE(q.try_submit([&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  }));
  // ...then fill the single pending slot. The worker may briefly hold
  // the first task before blocking, so allow a short retry window.
  bool filled = false;
  for (int i = 0; i < 100 && !filled; ++i) {
    filled = q.pending() == 1 ||
             q.try_submit([] {}, std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(filled);
  // A zero-wait submit against a full queue must fail immediately.
  EXPECT_FALSE(q.try_submit([] {}));
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
}

TEST(BoundedTaskQueue, DepthZeroIsClampedToOne) {
  BoundedTaskQueue q(1, 0);
  EXPECT_EQ(q.depth(), 1u);
  std::atomic<bool> ran{false};
  ASSERT_TRUE(
      q.try_submit([&] { ran = true; }, std::chrono::milliseconds(100)));
  while (!ran.load()) {
    std::this_thread::yield();
  }
}

}  // namespace
}  // namespace repro
