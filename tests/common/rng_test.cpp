#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace repro {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng r(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(r.uniform_int(3, 7));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 3);
  EXPECT_EQ(*seen.rbegin(), 7);
}

TEST(Rng, UniformIntSingleton) {
  Rng r(13);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(r.uniform_int(5, 5), 5);
}

TEST(Rng, HashJitterDeterministicAndBounded) {
  const double a = hash_jitter(123, 0.05);
  EXPECT_EQ(a, hash_jitter(123, 0.05));
  for (std::uint64_t k = 0; k < 500; ++k) {
    const double j = hash_jitter(k, 0.05);
    EXPECT_GE(j, 1.0);
    EXPECT_LT(j, 1.05);
  }
}

TEST(Rng, HashJitterSpread) {
  // Jitter must actually vary with the key.
  std::set<double> values;
  for (std::uint64_t k = 0; k < 64; ++k) values.insert(hash_jitter(k, 0.05));
  EXPECT_GT(values.size(), 60u);
}

TEST(Rng, Mix64AvalanchesSingleBit) {
  // Flipping one input bit should flip many output bits.
  const std::uint64_t a = mix64(0x1234);
  const std::uint64_t b = mix64(0x1235);
  EXPECT_GE(__builtin_popcountll(a ^ b), 16);
}

}  // namespace
}  // namespace repro
