#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace repro {
namespace {

TEST(Stats, MeanMinMax) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(min_of(xs), 1.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 4.0);
}

TEST(Stats, MeanOfEmptyIsZero) { EXPECT_EQ(mean({}), 0.0); }

TEST(Stats, StddevKnownValue) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(stddev(xs), 2.0, 1e-12);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs = {3.0, 1.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 2.5);
}

TEST(Stats, RelativeRmsePerfectPrediction) {
  const std::vector<double> obs = {1.0, 2.0, 5.0};
  EXPECT_DOUBLE_EQ(relative_rmse(obs, obs), 0.0);
}

TEST(Stats, RelativeRmseUniformUnderprediction) {
  // Predicting 10% low everywhere gives exactly 10% RMSE.
  const std::vector<double> obs = {1.0, 2.0, 5.0};
  const std::vector<double> pred = {0.9, 1.8, 4.5};
  EXPECT_NEAR(relative_rmse(pred, obs), 0.10, 1e-12);
}

TEST(Stats, MeanAbsoluteRelativeError) {
  const std::vector<double> obs = {2.0, 4.0};
  const std::vector<double> pred = {1.0, 5.0};
  EXPECT_NEAR(mean_absolute_relative_error(pred, obs), 0.375, 1e-12);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  const std::vector<double> ys = {2.0, 4.0, 6.0};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
}

TEST(Stats, PearsonAnticorrelation) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  const std::vector<double> ys = {6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson(xs, ys), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantSeriesIsZero) {
  const std::vector<double> xs = {1.0, 1.0, 1.0};
  const std::vector<double> ys = {2.0, 4.0, 6.0};
  EXPECT_EQ(pearson(xs, ys), 0.0);
}

TEST(Stats, IndicesWithinOfMin) {
  const std::vector<double> v = {10.0, 10.5, 11.5, 20.0};
  const auto idx = indices_within_of_min(v, 0.10);
  ASSERT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx[0], 0u);
  EXPECT_EQ(idx[1], 1u);
}

TEST(Stats, IndicesWithinOfMax) {
  const std::vector<double> v = {80.0, 95.0, 100.0, 50.0};
  const auto idx = indices_within_of_max(v, 0.20);
  ASSERT_EQ(idx.size(), 3u);
  EXPECT_EQ(idx[0], 0u);
  EXPECT_EQ(idx[1], 1u);
  EXPECT_EQ(idx[2], 2u);
}

TEST(Stats, SummarizeCounts) {
  const std::vector<double> xs = {1.0, 3.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 2u);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
}

}  // namespace
}  // namespace repro
