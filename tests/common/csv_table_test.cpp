#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/csv.hpp"
#include "common/table.hpp"

namespace repro {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = temp_path("repro_csv_test.csv");
  {
    CsvWriter w(path, {"a", "b"});
    w.row({"1", "2"});
    w.row({CsvWriter::cell(3.5), CsvWriter::cell(7LL)});
    EXPECT_EQ(w.rows_written(), 2u);
  }
  EXPECT_EQ(slurp(path), "a,b\n1,2\n3.5,7\n");
  std::remove(path.c_str());
}

TEST(Csv, RowWidthMismatchThrows) {
  const std::string path = temp_path("repro_csv_test2.csv");
  CsvWriter w(path, {"a", "b"});
  EXPECT_THROW(w.row({"only-one"}), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Csv, QuotesSpecialCharacters) {
  const std::string path = temp_path("repro_csv_test3.csv");
  {
    CsvWriter w(path, {"a"});
    w.row({"x,y"});
  }
  EXPECT_EQ(slurp(path), "a\n\"x,y\"\n");
  std::remove(path.c_str());
}

TEST(Csv, UnopenablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/foo.csv", {"a"}),
               std::runtime_error);
}

TEST(Table, RendersAlignedColumns) {
  AsciiTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "12345"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 12345 |"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  AsciiTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::runtime_error);
}

TEST(Table, Formatters) {
  EXPECT_EQ(AsciiTable::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(AsciiTable::fmt_pct(0.096, 1), "9.6%");
  const std::string sci = AsciiTable::fmt_sci(7.36e-3, 2);
  EXPECT_NE(sci.find("7.36e-03"), std::string::npos);
}

}  // namespace
}  // namespace repro
