#include "common/math_util.hpp"

#include <gtest/gtest.h>

namespace repro {
namespace {

TEST(MathUtil, CeilDivBasics) {
  EXPECT_EQ(ceil_div(0, 4), 0);
  EXPECT_EQ(ceil_div(1, 4), 1);
  EXPECT_EQ(ceil_div(4, 4), 1);
  EXPECT_EQ(ceil_div(5, 4), 2);
  EXPECT_EQ(ceil_div<std::int64_t>(8191, 4096), 2);
}

TEST(MathUtil, FloorDivAndRounding) {
  EXPECT_EQ(floor_div(7, 2), 3);
  EXPECT_EQ(round_up(5, 4), 8);
  EXPECT_EQ(round_up(8, 4), 8);
  EXPECT_EQ(round_down(7, 4), 4);
  EXPECT_EQ(round_down(8, 4), 8);
  EXPECT_TRUE(is_even(0));
  EXPECT_TRUE(is_even(4));
  EXPECT_FALSE(is_even(3));
}

TEST(MathUtil, SumCeilDivMatchesBruteForce) {
  for (std::int64_t lo : {1, 3, 8}) {
    for (std::int64_t hi : {7, 16, 33}) {
      for (std::int64_t d : {1, 4, 128}) {
        std::int64_t expect = 0;
        for (std::int64_t x = lo; x <= hi; x += 2) expect += (x + d - 1) / d;
        EXPECT_EQ(sum_ceil_div(lo, hi, 2, d), expect)
            << "lo=" << lo << " hi=" << hi << " d=" << d;
      }
    }
  }
}

TEST(MathUtil, ClosedFormIsOptimisticLowerBound) {
  // Relaxing ceilings can only decrease the sum.
  for (std::int64_t lo : {2, 5}) {
    for (std::int64_t hi : {21, 64}) {
      for (std::int64_t d : {3, 128}) {
        EXPECT_LE(sum_div_closed_form(lo, hi, 2, d),
                  static_cast<double>(sum_ceil_div(lo, hi, 2, d)) + 1e-9);
      }
    }
  }
}

TEST(MathUtil, ClosedFormEmptyRange) {
  EXPECT_EQ(sum_div_closed_form(10, 4, 2, 3), 0.0);
}

}  // namespace
}  // namespace repro
