#include "stencil/reference.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stencil/apply.hpp"

namespace repro::stencil {
namespace {

TEST(Reference, InitialGridIsDeterministic) {
  const ProblemSize p{.dim = 2, .S = {16, 16, 0}, .T = 1};
  const Grid<float> a = make_initial_grid(p, 7);
  const Grid<float> b = make_initial_grid(p, 7);
  EXPECT_EQ(max_abs_diff(a, b), 0.0);
  const Grid<float> c = make_initial_grid(p, 8);
  EXPECT_GT(max_abs_diff(a, c), 0.0);
}

TEST(Reference, JacobiAveragePreservesConstantInterior) {
  // A constant field stays constant away from the (zero) boundary.
  const StencilDef& def = get_stencil(StencilKind::kJacobi2D);
  const ProblemSize p{.dim = 2, .S = {32, 32, 0}, .T = 3};
  Grid<float> init(2, p.S, 2.0F);
  const Grid<float> out = run_reference(def, p, init);
  // Interior point far from the boundary (3 steps propagate radius 3).
  EXPECT_NEAR(out.at(16, 16), 2.0F, 1e-5);
  // Boundary-adjacent points decay toward the zero boundary.
  EXPECT_LT(out.at(0, 0), 2.0F);
}

TEST(Reference, HeatConservesBoundedness) {
  const StencilDef& def = get_stencil(StencilKind::kHeat2D);
  const ProblemSize p{.dim = 2, .S = {24, 24, 0}, .T = 20};
  const Grid<float> init = make_initial_grid(p, 3);
  const double max0 = max_abs_diff(init, Grid<float>(2, p.S));  // max |init|
  const Grid<float> out = run_reference(def, p, init);
  for (float v : out.raw()) {
    EXPECT_LE(std::abs(static_cast<double>(v)), max0 + 1e-6);
  }
}

TEST(Reference, GradientIsNonNegative) {
  const StencilDef& def = get_stencil(StencilKind::kGradient2D);
  const ProblemSize p{.dim = 2, .S = {16, 16, 0}, .T = 2};
  const Grid<float> out = run_reference(def, p, make_initial_grid(p, 5));
  for (float v : out.raw()) EXPECT_GE(v, 0.0F);
}

TEST(Reference, OneStepMatchesManualApply) {
  const StencilDef& def = get_stencil(StencilKind::kHeat3D);
  const ProblemSize p{.dim = 3, .S = {6, 6, 6}, .T = 1};
  const Grid<float> init = make_initial_grid(p, 11);
  const Grid<float> out = run_reference(def, p, init);
  for (Coord i = 0; i < 6; ++i) {
    for (Coord j = 0; j < 6; ++j) {
      for (Coord k = 0; k < 6; ++k) {
        EXPECT_EQ(out.at(i, j, k), apply_point(def, init, i, j, k));
      }
    }
  }
}

TEST(Reference, DimMismatchThrows) {
  const StencilDef& def = get_stencil(StencilKind::kJacobi2D);
  const ProblemSize p{.dim = 3, .S = {8, 8, 8}, .T = 1};
  EXPECT_THROW(run_reference(def, p, Grid<float>(3, p.S)),
               std::invalid_argument);
}

TEST(Reference, ExtentMismatchThrows) {
  const StencilDef& def = get_stencil(StencilKind::kJacobi2D);
  const ProblemSize p{.dim = 2, .S = {8, 8, 0}, .T = 1};
  EXPECT_THROW(run_reference(def, p, Grid<float>(2, {4, 8, 0})),
               std::invalid_argument);
}

TEST(Reference, ChecksumDistinguishesGrids) {
  const ProblemSize p{.dim = 2, .S = {8, 8, 0}, .T = 1};
  const Grid<float> a = make_initial_grid(p, 1);
  const Grid<float> b = make_initial_grid(p, 2);
  EXPECT_NE(grid_checksum(a), grid_checksum(b));
  EXPECT_EQ(grid_checksum(a), grid_checksum(a));
}

TEST(ProblemSizes, PaperCatalogues) {
  EXPECT_EQ(paper_2d_problem_sizes().size(), 10u);
  EXPECT_EQ(paper_3d_problem_sizes().size(), 12u);  // T <= S filter
  for (const auto& p : paper_3d_problem_sizes()) EXPECT_LE(p.T, p.S[0]);
}

TEST(ProblemSizes, TotalPointsAndFlops) {
  const ProblemSize p{.dim = 2, .S = {100, 50, 0}, .T = 7};
  EXPECT_EQ(p.space_points(), 5000);
  EXPECT_EQ(p.total_points(), 35000);
  const StencilDef& def = get_stencil(StencilKind::kJacobi2D);
  EXPECT_DOUBLE_EQ(total_flops(def, p), 9.0 * 35000.0);
}

TEST(ProblemSizes, ToStringFormat) {
  const ProblemSize p{.dim = 2, .S = {4096, 4096, 0}, .T = 1024};
  EXPECT_EQ(p.to_string(), "4096x4096,T=1024");
}

}  // namespace
}  // namespace repro::stencil
