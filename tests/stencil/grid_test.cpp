#include "stencil/grid.hpp"

#include <gtest/gtest.h>

namespace repro::stencil {
namespace {

TEST(Grid, ExtentsAndSize1D) {
  Grid<float> g(1, {10, 0, 0});
  EXPECT_EQ(g.extent(0), 10);
  EXPECT_EQ(g.extent(1), 1);
  EXPECT_EQ(g.extent(2), 1);
  EXPECT_EQ(g.size(), 10u);
}

TEST(Grid, ExtentsAndSize3D) {
  Grid<float> g(3, {4, 5, 6});
  EXPECT_EQ(g.size(), 120u);
}

TEST(Grid, RowMajorLastDimFastest) {
  Grid<float> g(3, {2, 2, 2});
  g.at(0, 0, 0) = 1.0F;
  g.at(0, 0, 1) = 2.0F;
  g.at(0, 1, 0) = 3.0F;
  g.at(1, 0, 0) = 4.0F;
  EXPECT_EQ(g.raw()[0], 1.0F);
  EXPECT_EQ(g.raw()[1], 2.0F);
  EXPECT_EQ(g.raw()[2], 3.0F);
  EXPECT_EQ(g.raw()[4], 4.0F);
}

TEST(Grid, FillValue) {
  Grid<float> g(2, {3, 3, 0}, 7.5F);
  for (float v : g.raw()) EXPECT_EQ(v, 7.5F);
}

TEST(Grid, BoundaryReadsReturnBoundaryValue) {
  Grid<float> g(2, {3, 3, 0}, 1.0F);
  EXPECT_EQ(g.read_or_boundary(-1, 0), 0.0F);
  EXPECT_EQ(g.read_or_boundary(0, 3), 0.0F);
  EXPECT_EQ(g.read_or_boundary(2, 2), 1.0F);
  EXPECT_EQ(g.read_or_boundary(-1, 0, 0, 9.0F), 9.0F);
}

TEST(Grid, InBounds) {
  Grid<float> g(2, {3, 4, 0});
  EXPECT_TRUE(g.in_bounds(0, 0));
  EXPECT_TRUE(g.in_bounds(2, 3));
  EXPECT_FALSE(g.in_bounds(3, 0));
  EXPECT_FALSE(g.in_bounds(0, 4));
  EXPECT_FALSE(g.in_bounds(0, -1));
}

}  // namespace
}  // namespace repro::stencil
