// Unit tests for the single stencil-update definition both executors
// share. Any bug here would corrupt every numeric result, so the
// formulas are pinned down against hand computation.
#include "stencil/apply.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace repro::stencil {
namespace {

TEST(Apply, WeightedSumMatchesHandComputation) {
  const StencilDef& def = get_stencil(StencilKind::kJacobi2D);
  Grid<float> g(2, {3, 3, 0});
  float v = 1.0F;
  for (Coord i = 0; i < 3; ++i) {
    for (Coord j = 0; j < 3; ++j) g.at(i, j) = v++;
  }
  // Center (1,1)=5; N(0,1)=2; S(2,1)=8; W(1,0)=4; E(1,2)=6.
  const double expect = (5.0 + 2.0 + 8.0 + 4.0 + 6.0) / 5.0;
  EXPECT_NEAR(apply_point(def, g, 1, 1), expect, 1e-6);
}

TEST(Apply, BoundaryReadsAreZero) {
  const StencilDef& def = get_stencil(StencilKind::kJacobi2D);
  Grid<float> g(2, {2, 2, 0}, 5.0F);
  // Corner (0,0): center 5, E 5, S 5, N and W out of domain -> 0.
  EXPECT_NEAR(apply_point(def, g, 0, 0), 15.0 / 5.0, 1e-6);
}

TEST(Apply, ConstantTermIsAdded) {
  StencilDef def = get_stencil(StencilKind::kJacobi1D);
  def.constant = 2.5;
  Grid<float> g(1, {3, 0, 0}, 0.0F);
  EXPECT_NEAR(apply_point(def, g, 1), 2.5, 1e-6);
}

TEST(Apply, GradientMagnitudeFormula) {
  const StencilDef& def = get_stencil(StencilKind::kGradient2D);
  Grid<float> g(2, {3, 3, 0}, 0.0F);
  g.at(2, 1) = 4.0F;  // E along s1
  g.at(0, 1) = 2.0F;  // W
  g.at(1, 2) = 6.0F;  // N along s2
  g.at(1, 0) = 0.0F;  // S
  // dx = 0.5*(4-2) = 1; dy = 0.5*(6-0) = 3.
  const double expect = std::sqrt(1.0 + 9.0 + def.constant);
  EXPECT_NEAR(apply_point(def, g, 1, 1), expect, 1e-6);
}

TEST(Apply, GradientOfConstantFieldIsSqrtEps) {
  const StencilDef& def = get_stencil(StencilKind::kGradient2D);
  Grid<float> g(2, {5, 5, 0}, 3.0F);
  EXPECT_NEAR(apply_point(def, g, 2, 2), std::sqrt(def.constant), 1e-7);
}

TEST(Apply, Radius2TapsReachTwoCells) {
  const StencilDef& def = get_stencil(StencilKind::kGauss1D);
  Grid<float> g(1, {5, 0, 0}, 0.0F);
  g.at(0) = 16.0F;  // only the distance-2 neighbour is nonzero
  EXPECT_NEAR(apply_point(def, g, 2), 16.0 / 16.0, 1e-6);
}

TEST(Apply, ThreeDimensionalTaps) {
  const StencilDef& def = get_stencil(StencilKind::kHeat3D);
  Grid<float> g(3, {3, 3, 3}, 1.0F);
  // Uniform field away from boundary: weights sum to 1 -> unchanged.
  EXPECT_NEAR(apply_point(def, g, 1, 1, 1), 1.0, 1e-6);
}

}  // namespace
}  // namespace repro::stencil
