#include "stencil/stencil.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace repro::stencil {
namespace {

TEST(Catalogue, HasAllPaperBenchmarksPlusExtensions) {
  EXPECT_EQ(all_stencils().size(), 10u);
  EXPECT_EQ(paper_2d_benchmarks().size(), 4u);
  EXPECT_EQ(paper_3d_benchmarks().size(), 2u);
}

TEST(Catalogue, LookupByKindAndName) {
  const StencilDef& j = get_stencil(StencilKind::kJacobi2D);
  EXPECT_EQ(j.name, "Jacobi2D");
  EXPECT_EQ(&get_stencil_by_name("Jacobi2D"), &j);
  EXPECT_THROW(get_stencil_by_name("NoSuch"), std::invalid_argument);
}

TEST(Catalogue, DimensionsAreConsistent) {
  for (const StencilDef& d : all_stencils()) {
    EXPECT_GE(d.dim, 1) << d.name;
    EXPECT_LE(d.dim, 3) << d.name;
    for (const Tap& tap : d.taps) {
      for (int i = d.dim; i < 3; ++i) {
        EXPECT_EQ(tap.ds[static_cast<std::size_t>(i)], 0)
            << d.name << ": tap uses dimension beyond stencil dim";
      }
      for (int i = 0; i < 3; ++i) {
        EXPECT_LE(std::abs(tap.ds[static_cast<std::size_t>(i)]), d.radius)
            << d.name;
      }
    }
  }
}

TEST(Catalogue, PaperBenchmarksAreFirstOrder) {
  // The paper's benchmark set is radius-1; the catalogue additionally
  // carries two radius-2 stencils for the Section 7 extension.
  for (const auto kind : paper_2d_benchmarks()) {
    EXPECT_EQ(get_stencil(kind).radius, 1);
  }
  for (const auto kind : paper_3d_benchmarks()) {
    EXPECT_EQ(get_stencil(kind).radius, 1);
  }
  EXPECT_EQ(get_stencil(StencilKind::kGauss1D).radius, 2);
  EXPECT_EQ(get_stencil(StencilKind::kWideStar2D).radius, 2);
}

TEST(Catalogue, WeightedSumStencilsAreStable) {
  // For the linear stencils, sum of |weights| <= 1 keeps long
  // functional runs bounded (diffusive/contractive updates).
  for (const StencilDef& d : all_stencils()) {
    if (d.body != BodyKind::kWeightedSum) continue;
    double abs_sum = 0.0;
    for (const Tap& t : d.taps) abs_sum += std::abs(t.weight);
    EXPECT_LE(abs_sum, 1.0 + 1e-12) << d.name;
  }
}

TEST(Catalogue, TapsAreSymmetric) {
  // The parity-buffer legality argument requires symmetric tap sets:
  // for every tap offset a, -a is also a tap offset.
  for (const StencilDef& d : all_stencils()) {
    for (const Tap& t : d.taps) {
      bool found = false;
      for (const Tap& u : d.taps) {
        if (u.ds[0] == -t.ds[0] && u.ds[1] == -t.ds[1] &&
            u.ds[2] == -t.ds[2]) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << d.name << " has unmatched tap";
    }
  }
}

TEST(Catalogue, InstructionMixesArePlausible) {
  for (const StencilDef& d : all_stencils()) {
    EXPECT_EQ(d.mix.shared_loads, static_cast<int>(d.taps.size())) << d.name;
    EXPECT_GT(d.flops_per_point, 0.0) << d.name;
    EXPECT_EQ(d.words_per_point, 2) << d.name;
  }
}

TEST(Catalogue, GradientIsTheOnlyNonlinearBody) {
  for (const StencilDef& d : all_stencils()) {
    if (d.kind == StencilKind::kGradient2D) {
      EXPECT_EQ(d.body, BodyKind::kGradientMagnitude);
      EXPECT_EQ(d.mix.special_ops, 2);
    } else {
      EXPECT_EQ(d.body, BodyKind::kWeightedSum) << d.name;
    }
  }
}

TEST(Catalogue, ToStringRoundTrips) {
  for (const StencilDef& d : all_stencils()) {
    EXPECT_EQ(to_string(d.kind), d.name);
  }
}

}  // namespace
}  // namespace repro::stencil
