#include "stencil/parser.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "analysis/diagnostics.hpp"
#include "hhc/tiled_executor.hpp"
#include "stencil/reference.hpp"

namespace repro::stencil {
namespace {

constexpr const char* kJacobiSpec = R"(
# five-point average
stencil MyJacobi {
  dim 2
  tap (0,0)   0.2
  tap (-1,0)  0.2
  tap (1,0)   0.2
  tap (0,-1)  0.2
  tap (0,1)   0.2
}
)";

TEST(Parser, ParsesWellFormedStencil) {
  const StencilDef d = parse_stencil(kJacobiSpec);
  EXPECT_EQ(d.name, "MyJacobi");
  EXPECT_EQ(d.kind, StencilKind::kCustom);
  EXPECT_EQ(d.dim, 2);
  EXPECT_EQ(d.radius, 1);
  EXPECT_EQ(d.taps.size(), 5u);
  EXPECT_EQ(d.body, BodyKind::kWeightedSum);
  EXPECT_EQ(d.mix.shared_loads, 5);
  EXPECT_GT(d.flops_per_point, 0.0);
}

TEST(Parser, ParsedStencilMatchesBuiltinNumerically) {
  // The spec above is exactly the built-in Jacobi2D; results must be
  // bit-identical through both the reference and the tiled executor.
  const StencilDef custom = parse_stencil(kJacobiSpec);
  const StencilDef& builtin = get_stencil(StencilKind::kJacobi2D);
  const ProblemSize p{.dim = 2, .S = {20, 18, 0}, .T = 6};
  const auto init = make_initial_grid(p, 5);
  EXPECT_EQ(max_abs_diff(run_reference(custom, p, init),
                         run_reference(builtin, p, init)),
            0.0);
  const hhc::TileSizes ts{.tT = 2, .tS1 = 4, .tS2 = 8, .tS3 = 1};
  EXPECT_EQ(max_abs_diff(hhc::run_tiled(custom, p, ts, init),
                         run_reference(builtin, p, init)),
            0.0);
}

TEST(Parser, DerivesRadiusFromTaps) {
  const StencilDef d = parse_stencil(R"(
stencil Wide {
  dim 1
  tap (-2) 0.25
  tap (0)  0.5
  tap (2)  0.25
})");
  EXPECT_EQ(d.radius, 2);
}

TEST(Parser, GradientBody) {
  const StencilDef d = parse_stencil(R"(
stencil Edge {
  dim 2
  body gradient_magnitude
  tap (1,0)  0.5
  tap (-1,0) -0.5
  tap (0,1)  0.5
  tap (0,-1) -0.5
  constant 1e-6
})");
  EXPECT_EQ(d.body, BodyKind::kGradientMagnitude);
  EXPECT_EQ(d.mix.special_ops, 2);
  EXPECT_DOUBLE_EQ(d.constant, 1e-6);
}

TEST(Parser, ThreeDTapsAndScientificWeights) {
  const StencilDef d = parse_stencil(R"(
stencil S3 {
  dim 3
  tap (0,0,0)  9.4e-1
  tap (1,0,0)  1e-2
  tap (-1,0,0) 1e-2
  tap (0,1,0)  1e-2
  tap (0,-1,0) 1e-2
  tap (0,0,1)  1e-2
  tap (0,0,-1) 1e-2
  flops 13
})");
  EXPECT_EQ(d.dim, 3);
  EXPECT_DOUBLE_EQ(d.flops_per_point, 13.0);
  EXPECT_GT(d.mix.addr_ops, 40);  // 3D addressing heuristic
}

TEST(Parser, ErrorMissingDim) {
  EXPECT_THROW(parse_stencil("stencil X { tap (0) 1.0 }"), ParseError);
}

TEST(Parser, ErrorDimRange) {
  EXPECT_THROW(parse_stencil("stencil X { dim 4 }"), ParseError);
}

TEST(Parser, ErrorNoTaps) {
  EXPECT_THROW(parse_stencil("stencil X { dim 2 }"), ParseError);
}

TEST(Parser, ErrorUnknownKey) {
  try {
    parse_stencil("stencil X {\n dim 2\n frobnicate 3\n}");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3);
    EXPECT_NE(std::string(e.what()).find("frobnicate"), std::string::npos);
  }
}

TEST(Parser, ErrorAsymmetricTaps) {
  EXPECT_THROW(parse_stencil(R"(
stencil X {
  dim 1
  tap (0) 0.5
  tap (1) 0.5
})"),
               ParseError);
}

TEST(Parser, ErrorTapBeyondDim) {
  EXPECT_THROW(parse_stencil(R"(
stencil X {
  dim 2
  tap (0,0) 1.0
  tap (0,0,1) 0.0
})"),
               ParseError);
}

TEST(Parser, ErrorGradientNeedsFourTaps) {
  EXPECT_THROW(parse_stencil(R"(
stencil X {
  dim 2
  body gradient_magnitude
  tap (1,0) 0.5
  tap (-1,0) -0.5
})"),
               ParseError);
}

TEST(Parser, ErrorUnterminatedBlock) {
  EXPECT_THROW(parse_stencil("stencil X { dim 2\n tap (0,0) 1.0"), ParseError);
}

TEST(Parser, ErrorTrailingInput) {
  EXPECT_THROW(
      parse_stencil("stencil X { dim 1\n tap (0) 1.0 } stencil Y {}"),
      ParseError);
}

TEST(Parser, ErrorNonIntegerOffset) {
  EXPECT_THROW(parse_stencil("stencil X { dim 1\n tap (0.5) 1.0 }"),
               ParseError);
}

// --- error-path details: line numbers and stable diagnostic codes ----

TEST(Parser, ErrorLineNumbersPointAtTheProblem) {
  // Line 1: header. Line 3: the bad dim.
  try {
    parse_stencil("stencil X {\n\n dim 7\n}");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3);
    EXPECT_EQ(e.code(), analysis::Code::kParseDim);
  }
  // The asymmetric-tap error points at the tap lacking a mirror, not
  // at the end of the block.
  try {
    parse_stencil("stencil X {\n dim 1\n tap (0) 0.5\n tap (1) 0.5\n}");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 4);
    EXPECT_EQ(e.code(), analysis::Code::kParseAsymmetricTaps);
  }
  // A tap with more offsets than 'dim' never reaches the semantic
  // checks: the parser reads exactly dim offsets and trips on the
  // extra comma, still at the offending line. (Out-of-dim offsets on
  // hand-built defs are the dependence analyzer's SL202.)
  try {
    parse_stencil("stencil X {\n dim 2\n tap (0,0) 1.0\n tap (0,0,1) 0.0\n}");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 4);
    EXPECT_EQ(e.code(), analysis::Code::kParseSyntax);
  }
}

TEST(Parser, ErrorMalformedBodyKind) {
  try {
    parse_stencil("stencil X {\n dim 2\n body frob\n}");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3);
    EXPECT_EQ(e.code(), analysis::Code::kParseSyntax);
    EXPECT_NE(std::string(e.what()).find("frob"), std::string::npos);
  }
}

TEST(Parser, ErrorNonPositiveFlops) {
  try {
    parse_stencil("stencil X {\n dim 1\n tap (0) 1.0\n flops -3\n}");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.code(), analysis::Code::kParseFlopsNonPositive);
  }
}

TEST(Parser, ErrorGradientArityCode) {
  try {
    parse_stencil(
        "stencil X {\n dim 2\n body gradient_magnitude\n"
        " tap (1,0) 0.5\n tap (-1,0) -0.5\n}");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.code(), analysis::Code::kParseBodyArity);
  }
}

// --- the diagnostic-collecting API -----------------------------------

TEST(Parser, DiagnosticApiCollectsInsteadOfThrowing) {
  analysis::DiagnosticEngine diags;
  const auto d = parse_stencil("stencil X {\n dim 2\n frobnicate 3\n}", diags);
  EXPECT_FALSE(d.has_value());
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags.diagnostics()[0].severity, analysis::Severity::kError);
  EXPECT_EQ(diags.diagnostics()[0].code, analysis::Code::kParseSyntax);
  EXPECT_EQ(diags.diagnostics()[0].line, 3);
}

TEST(Parser, DiagnosticApiAgreesWithThrowingApi) {
  const char* bad_inputs[] = {
      "stencil X { tap (0) 1.0 }",
      "stencil X { dim 4 }",
      "stencil X { dim 2 }",
      "stencil X {\n dim 1\n tap (0) 0.5\n tap (1) 0.5\n}",
      "stencil X { dim 2\n tap (0,0) 1.0",
      "stencil X { dim 1\n tap (0.5) 1.0 }",
  };
  for (const char* text : bad_inputs) {
    analysis::DiagnosticEngine diags;
    EXPECT_FALSE(parse_stencil(text, diags).has_value()) << text;
    try {
      parse_stencil(text);
      FAIL() << "expected ParseError for: " << text;
    } catch (const ParseError& e) {
      ASSERT_TRUE(diags.has_errors()) << text;
      const analysis::Diagnostic& d = diags.diagnostics().back();
      EXPECT_EQ(d.line, e.line()) << text;
      EXPECT_EQ(d.code, e.code()) << text;
      EXPECT_NE(std::string(e.what()).find(d.message), std::string::npos)
          << text;
    }
  }
}

TEST(Parser, DiagnosticApiEmitsWarningsOnSuccess) {
  analysis::DiagnosticEngine diags;
  const auto d = parse_stencil(
      "stencil X {\n dim 1\n tap (0) 0.5\n tap (0) 0.5\n}", diags);
  ASSERT_TRUE(d.has_value());
  EXPECT_FALSE(diags.has_errors());
  EXPECT_TRUE(diags.has_code(analysis::Code::kParseDuplicateTap));
  // The throwing API stays silent about warnings (legacy behavior).
  EXPECT_NO_THROW(parse_stencil("stencil X {\n dim 1\n tap (0) 0.5\n}"));
}

TEST(Parser, DiagnosticApiFileNotFound) {
  analysis::DiagnosticEngine diags;
  EXPECT_FALSE(
      parse_stencil_file("/nonexistent/path.stencil", diags).has_value());
  EXPECT_TRUE(diags.has_errors());
}

TEST(Parser, FileRoundTrip) {
  const std::string path = "/tmp/repro_parser_test.stencil";
  {
    std::ofstream out(path);
    out << kJacobiSpec;
  }
  const StencilDef d = parse_stencil_file(path);
  EXPECT_EQ(d.name, "MyJacobi");
  std::remove(path.c_str());
  EXPECT_THROW(parse_stencil_file("/nonexistent/path.stencil"),
               std::runtime_error);
}

}  // namespace
}  // namespace repro::stencil
