#include "stencil/parser.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "hhc/tiled_executor.hpp"
#include "stencil/reference.hpp"

namespace repro::stencil {
namespace {

constexpr const char* kJacobiSpec = R"(
# five-point average
stencil MyJacobi {
  dim 2
  tap (0,0)   0.2
  tap (-1,0)  0.2
  tap (1,0)   0.2
  tap (0,-1)  0.2
  tap (0,1)   0.2
}
)";

TEST(Parser, ParsesWellFormedStencil) {
  const StencilDef d = parse_stencil(kJacobiSpec);
  EXPECT_EQ(d.name, "MyJacobi");
  EXPECT_EQ(d.kind, StencilKind::kCustom);
  EXPECT_EQ(d.dim, 2);
  EXPECT_EQ(d.radius, 1);
  EXPECT_EQ(d.taps.size(), 5u);
  EXPECT_EQ(d.body, BodyKind::kWeightedSum);
  EXPECT_EQ(d.mix.shared_loads, 5);
  EXPECT_GT(d.flops_per_point, 0.0);
}

TEST(Parser, ParsedStencilMatchesBuiltinNumerically) {
  // The spec above is exactly the built-in Jacobi2D; results must be
  // bit-identical through both the reference and the tiled executor.
  const StencilDef custom = parse_stencil(kJacobiSpec);
  const StencilDef& builtin = get_stencil(StencilKind::kJacobi2D);
  const ProblemSize p{.dim = 2, .S = {20, 18, 0}, .T = 6};
  const auto init = make_initial_grid(p, 5);
  EXPECT_EQ(max_abs_diff(run_reference(custom, p, init),
                         run_reference(builtin, p, init)),
            0.0);
  const hhc::TileSizes ts{.tT = 2, .tS1 = 4, .tS2 = 8, .tS3 = 1};
  EXPECT_EQ(max_abs_diff(hhc::run_tiled(custom, p, ts, init),
                         run_reference(builtin, p, init)),
            0.0);
}

TEST(Parser, DerivesRadiusFromTaps) {
  const StencilDef d = parse_stencil(R"(
stencil Wide {
  dim 1
  tap (-2) 0.25
  tap (0)  0.5
  tap (2)  0.25
})");
  EXPECT_EQ(d.radius, 2);
}

TEST(Parser, GradientBody) {
  const StencilDef d = parse_stencil(R"(
stencil Edge {
  dim 2
  body gradient_magnitude
  tap (1,0)  0.5
  tap (-1,0) -0.5
  tap (0,1)  0.5
  tap (0,-1) -0.5
  constant 1e-6
})");
  EXPECT_EQ(d.body, BodyKind::kGradientMagnitude);
  EXPECT_EQ(d.mix.special_ops, 2);
  EXPECT_DOUBLE_EQ(d.constant, 1e-6);
}

TEST(Parser, ThreeDTapsAndScientificWeights) {
  const StencilDef d = parse_stencil(R"(
stencil S3 {
  dim 3
  tap (0,0,0)  9.4e-1
  tap (1,0,0)  1e-2
  tap (-1,0,0) 1e-2
  tap (0,1,0)  1e-2
  tap (0,-1,0) 1e-2
  tap (0,0,1)  1e-2
  tap (0,0,-1) 1e-2
  flops 13
})");
  EXPECT_EQ(d.dim, 3);
  EXPECT_DOUBLE_EQ(d.flops_per_point, 13.0);
  EXPECT_GT(d.mix.addr_ops, 40);  // 3D addressing heuristic
}

TEST(Parser, ErrorMissingDim) {
  EXPECT_THROW(parse_stencil("stencil X { tap (0) 1.0 }"), ParseError);
}

TEST(Parser, ErrorDimRange) {
  EXPECT_THROW(parse_stencil("stencil X { dim 4 }"), ParseError);
}

TEST(Parser, ErrorNoTaps) {
  EXPECT_THROW(parse_stencil("stencil X { dim 2 }"), ParseError);
}

TEST(Parser, ErrorUnknownKey) {
  try {
    parse_stencil("stencil X {\n dim 2\n frobnicate 3\n}");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3);
    EXPECT_NE(std::string(e.what()).find("frobnicate"), std::string::npos);
  }
}

TEST(Parser, ErrorAsymmetricTaps) {
  EXPECT_THROW(parse_stencil(R"(
stencil X {
  dim 1
  tap (0) 0.5
  tap (1) 0.5
})"),
               ParseError);
}

TEST(Parser, ErrorTapBeyondDim) {
  EXPECT_THROW(parse_stencil(R"(
stencil X {
  dim 2
  tap (0,0) 1.0
  tap (0,0,1) 0.0
})"),
               ParseError);
}

TEST(Parser, ErrorGradientNeedsFourTaps) {
  EXPECT_THROW(parse_stencil(R"(
stencil X {
  dim 2
  body gradient_magnitude
  tap (1,0) 0.5
  tap (-1,0) -0.5
})"),
               ParseError);
}

TEST(Parser, ErrorUnterminatedBlock) {
  EXPECT_THROW(parse_stencil("stencil X { dim 2\n tap (0,0) 1.0"), ParseError);
}

TEST(Parser, ErrorTrailingInput) {
  EXPECT_THROW(
      parse_stencil("stencil X { dim 1\n tap (0) 1.0 } stencil Y {}"),
      ParseError);
}

TEST(Parser, ErrorNonIntegerOffset) {
  EXPECT_THROW(parse_stencil("stencil X { dim 1\n tap (0.5) 1.0 }"),
               ParseError);
}

TEST(Parser, FileRoundTrip) {
  const std::string path = "/tmp/repro_parser_test.stencil";
  {
    std::ofstream out(path);
    out << kJacobiSpec;
  }
  const StencilDef d = parse_stencil_file(path);
  EXPECT_EQ(d.name, "MyJacobi");
  std::remove(path.c_str());
  EXPECT_THROW(parse_stencil_file("/nonexistent/path.stencil"),
               std::runtime_error);
}

}  // namespace
}  // namespace repro::stencil
