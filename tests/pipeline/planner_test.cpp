#include "pipeline/planner.hpp"

#include <gtest/gtest.h>

#include <string>

#include "device/registry.hpp"
#include "pipeline/pipeline.hpp"

namespace repro::pipeline {
namespace {

// Small enumeration caps keep every sweep in test-friendly territory
// (the same caps the service tests use).
PlanOptions test_options() {
  PlanOptions opt;
  opt.enumeration =
      tuner::EnumOptions{}.with_tT_max(8).with_tS1_max(12).with_tS2_max(192);
  opt.session = tuner::SessionOptions{}.with_jobs(1);
  return opt;
}

Pipeline parse(const std::string& text) {
  analysis::DiagnosticEngine diags;
  auto p = parse_pipeline_text(text, diags);
  EXPECT_TRUE(p) << analysis::render_human(diags.diagnostics());
  return *p;
}

const device::Descriptor& gtx980() {
  const device::Descriptor* d = device::registry().find("GTX 980");
  EXPECT_NE(d, nullptr);
  return *d;
}

// Fresh pricings: simulator measurements that actually ran (the
// memo absorbed the rest).
std::size_t fresh_pricings(const PipelinePlan& plan) {
  return plan.stats.machine_points - plan.stats.cache_hits;
}

constexpr const char* kSingle =
    R"({"pipeline_version":1,"name":"one","stages":[
         {"id":"a","stencil":"Jacobi2D","problem":{"S":[256,256],"T":4}}]})";

constexpr const char* kRepeated =
    R"({"pipeline_version":1,"name":"two","stages":[
         {"id":"a","stencil":"Jacobi2D","problem":{"S":[256,256],"T":4}},
         {"id":"b","stencil":"Jacobi2D","problem":{"S":[256,256],"T":4},
          "after":["a"]}]})";

TEST(Planner, AggregatesRepeatIntoEndToEndTalg) {
  const Pipeline p = parse(
      R"({"pipeline_version":1,"name":"rep","stages":[
           {"id":"a","stencil":"Jacobi2D","problem":{"S":[256,256],"T":4},
            "repeat":3}]})");
  Planner planner(gtx980(), test_options());
  const PipelinePlan plan = planner.plan(p);
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(plan.total_stages, 1u);
  EXPECT_EQ(plan.stage_executions, 3);
  EXPECT_EQ(plan.distinct_tasks, 1u);
  EXPECT_DOUBLE_EQ(plan.talg, 3.0 * plan.stages[0].best.talg);
  EXPECT_DOUBLE_EQ(plan.texec, 3.0 * plan.stages[0].best.texec);
  EXPECT_DOUBLE_EQ(plan.stages[0].talg_total, plan.talg);
}

// Satellite pin: a repeated stage costs ZERO additional pricings.
// With dedup the second copy never touches a session; with dedup off
// but shared sessions on, its sweep replays the memo point for point.
TEST(Planner, RepeatedStageCostsZeroAdditionalPricings) {
  const Pipeline one = parse(kSingle);
  const Pipeline two = parse(kRepeated);

  Planner base(gtx980(), test_options());
  const PipelinePlan ref = base.plan(one);
  ASSERT_TRUE(ref.feasible);
  const std::size_t single_cost = fresh_pricings(ref);
  ASSERT_GT(single_cost, 0u);

  // Dedup path: the duplicate is copied, not recomputed.
  Planner dedup(gtx980(), test_options());
  const PipelinePlan d = dedup.plan(two);
  ASSERT_TRUE(d.feasible);
  EXPECT_EQ(d.distinct_tasks, 1u);
  EXPECT_FALSE(d.stages[0].reused);
  EXPECT_TRUE(d.stages[1].reused);
  EXPECT_EQ(fresh_pricings(d), single_cost);

  // Memo path (dedup off, shared sessions on): the duplicate runs a
  // full sweep, but every measurement is a cache hit.
  Planner memo(gtx980(), test_options().with_dedup(false));
  const PipelinePlan m = memo.plan(two);
  ASSERT_TRUE(m.feasible);
  EXPECT_EQ(m.distinct_tasks, 2u);
  EXPECT_FALSE(m.stages[1].reused);
  EXPECT_GT(m.stats.machine_points, d.stats.machine_points);
  EXPECT_EQ(fresh_pricings(m), single_cost);

  // All three agree on the winning configurations and the end-to-end
  // times (only the reuse bookkeeping — reused/distinct_tasks — may
  // differ between the dedup and memo spellings).
  ASSERT_EQ(d.stages.size(), m.stages.size());
  for (std::size_t i = 0; i < d.stages.size(); ++i) {
    EXPECT_EQ(d.stages[i].best, m.stages[i].best);
  }
  EXPECT_DOUBLE_EQ(d.talg, m.talg);
  EXPECT_EQ(d.stages[0].best.dp.ts, ref.stages[0].best.dp.ts);
}

// Satellite pin: the warm-seeded level descent prunes strictly more
// than the cold sweep, and the results are byte-identical.
TEST(Planner, WarmSeededDescentPrunesStrictlyMoreThanCold) {
  // Two levels of the same smoother: the 512-level winner seeds the
  // 256-level sweep (same stencil, nearest problem).
  const Pipeline p = parse(
      R"({"pipeline_version":1,"name":"descent","stages":[
           {"id":"fine","stencil":"Jacobi2D","problem":{"S":[512,512],"T":4}},
           {"id":"coarse","stencil":"Jacobi2D","problem":{"S":[256,256],"T":4},
            "after":["fine"]}]})");

  Planner cold_planner(gtx980(), test_options().with_warm_seed(false));
  const PipelinePlan cold = cold_planner.plan(p);
  ASSERT_TRUE(cold.feasible);
  EXPECT_EQ(cold.stats.seeds_offered, 0u);

  Planner warm_planner(gtx980(), test_options());
  const PipelinePlan warm = warm_planner.plan(p);
  ASSERT_TRUE(warm.feasible);
  EXPECT_GT(warm.stats.seeds_offered, 0u);
  EXPECT_GT(warm.stats.seeds_admitted, 0u);

  // Seeding is strictly work-saving and cannot change any answer.
  EXPECT_GT(warm.stats.points_pruned, cold.stats.points_pruned);
  EXPECT_LT(fresh_pricings(warm), fresh_pricings(cold));
  EXPECT_EQ(plan_to_json(warm).dump(), plan_to_json(cold).dump());
}

TEST(Planner, SharedCalibrationAcrossProblemSizes) {
  // Two problems of one stencil share a calibration; the plan still
  // tunes two distinct tasks and stays deterministic across runs.
  const Pipeline p = parse(
      R"({"pipeline_version":1,"name":"cal","stages":[
           {"id":"a","stencil":"Heat2D","problem":{"S":[256,256],"T":4}},
           {"id":"b","stencil":"Heat2D","problem":{"S":[128,128],"T":4},
            "after":["a"]}]})");
  Planner p1(gtx980(), test_options());
  Planner p2(gtx980(), test_options());
  const PipelinePlan a = p1.plan(p);
  const PipelinePlan b = p2.plan(p);
  EXPECT_EQ(a.distinct_tasks, 2u);
  EXPECT_EQ(plan_to_json(a).dump(), plan_to_json(b).dump());
}

TEST(Planner, PinnedVariantIsHonored) {
  const Pipeline p = parse(
      R"({"pipeline_version":1,"name":"var","stages":[
           {"id":"a","stencil":"Jacobi2D","problem":{"S":[256,256],"T":4},
            "variant":{"unroll":2,"staging":"register"}}]})");
  Planner planner(gtx980(), test_options());
  const PipelinePlan plan = planner.plan(p);
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(plan.stages[0].best.dp.var.unroll, 2);
  EXPECT_EQ(plan.stages[0].best.dp.var.staging, stencil::Staging::kRegister);
}

TEST(Planner, CyclicPipelineThrows) {
  // Hand-built (parse_pipeline would reject it): plan() refuses.
  Pipeline p;
  Stage a;
  a.id = "a";
  a.stencil_name = "Jacobi2D";
  a.after = {"b"};
  Stage b;
  b.id = "b";
  b.stencil_name = "Jacobi2D";
  b.after = {"a"};
  p.stages = {a, b};
  Planner planner(gtx980(), test_options());
  EXPECT_THROW(planner.plan(p), std::invalid_argument);
}

}  // namespace
}  // namespace repro::pipeline
