#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "service/core.hpp"
#include "service/protocol.hpp"

namespace repro::service {
namespace {

namespace fs = std::filesystem;

// The request every test serves: a two-level descent with one
// duplicated stage, under small enumeration caps.
constexpr const char* kPipelineReq =
    R"({"v":1,"id":"pl1","kind":"pipeline",)"
    R"("pipeline":{"pipeline_version":1,"name":"svc","stages":[)"
    R"({"id":"fine","stencil":"Jacobi2D","problem":{"S":[512,512],"T":4}},)"
    R"({"id":"coarse","stencil":"Jacobi2D","problem":{"S":[256,256],"T":4},)"
    R"("after":["fine"]},)"
    R"({"id":"fine_up","stencil":"Jacobi2D","problem":{"S":[512,512],"T":4},)"
    R"("after":["coarse"]}]},)"
    R"("enum":{"tT_max":8,"tS1_max":12,"tS2_max":192}})";

class ServicePipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test case: ctest -j runs the cases concurrently.
    const std::string name =
        ::testing::UnitTest::GetInstance()->current_test_info()->name();
    store_dir_ =
        fs::temp_directory_path() / ("repro_pipeline_svc_store_" + name);
    fs::remove_all(store_dir_);
  }
  void TearDown() override { fs::remove_all(store_dir_); }

  fs::path store_dir_;
};

// The service determinism contract extends to the pipeline kind: a
// cold computation, a warm-store replay from a brand-new core, and a
// direct compute_payload call all serve byte-identical responses.
TEST_F(ServicePipelineTest, ColdWarmAndDirectAreByteIdentical) {
  std::string cold;
  {
    ServiceCore core(ServiceOptions{}.with_store_dir(store_dir_.string()));
    cold = core.handle(kPipelineReq);
    const ServiceStats s = core.stats();
    EXPECT_EQ(s.computed, 1u);
    EXPECT_EQ(s.pipeline, 1u);
    EXPECT_EQ(s.errors, 0u);
  }
  EXPECT_NE(cold.find(R"("ok":true)"), std::string::npos);
  EXPECT_NE(cold.find(R"("distinct_tasks":2)"), std::string::npos) << cold;
  EXPECT_NE(cold.find(R"("reused":true)"), std::string::npos);

  {
    ServiceCore core(ServiceOptions{}.with_store_dir(store_dir_.string()));
    EXPECT_EQ(core.handle(kPipelineReq), cold);
    const ServiceStats s = core.stats();
    EXPECT_EQ(s.computed, 0u);
    EXPECT_EQ(s.store_hits, 1u);
    EXPECT_EQ(s.pipeline, 1u);
  }

  analysis::DiagnosticEngine diags;
  const auto req = parse_request(kPipelineReq, diags);
  ASSERT_TRUE(req) << analysis::render_human(diags.diagnostics());
  EXPECT_EQ(render_result(req->id, req->kind, compute_payload(*req, nullptr)),
            cold);
}

TEST_F(ServicePipelineTest, TwoSpellingsShareOneCanonicalKey) {
  // Same DAG, members shuffled and defaults spelled out: the
  // canonical key embeds the normalized pipeline form, so both
  // spellings hit one store entry.
  const std::string variant_spelling =
      R"({"kind":"pipeline","v":1,"id":"other",)"
      R"("enum":{"tS2_max":192,"tT_max":8,"tS1_max":12},)"
      R"("pipeline":{"name":"svc","pipeline_version":1,"stages":[)"
      R"({"id":"fine","stencil":"Jacobi2D","repeat":1,"after":[],)"
      R"("problem":{"T":4,"S":[512,512]}},)"
      R"({"id":"coarse","stencil":"Jacobi2D","problem":{"S":[256,256],"T":4},)"
      R"("after":["fine"]},)"
      R"({"id":"fine_up","stencil":"Jacobi2D","problem":{"S":[512,512],"T":4},)"
      R"("after":["coarse"]}]}})";

  analysis::DiagnosticEngine diags;
  const auto a = parse_request(kPipelineReq, diags);
  const auto b = parse_request(variant_spelling, diags);
  ASSERT_TRUE(a);
  ASSERT_TRUE(b);
  EXPECT_EQ(a->canonical_key(), b->canonical_key());

  ServiceCore core(ServiceOptions{}.with_store_dir(store_dir_.string()));
  (void)core.handle(kPipelineReq);
  (void)core.handle(variant_spelling);
  const ServiceStats s = core.stats();
  EXPECT_EQ(s.computed, 1u);
  EXPECT_EQ(s.store_hits, 1u);
}

TEST_F(ServicePipelineTest, KeyWhitelistRejectsForeignFields) {
  // predict/best_tile fields are not pipeline fields.
  ServiceCore core{ServiceOptions{}};
  const std::string out = core.handle(
      R"({"v":1,"id":"bad","kind":"pipeline",)"
      R"("pipeline":{"pipeline_version":1,"stages":[)"
      R"({"id":"a","stencil":"Jacobi2D","problem":{"S":[256,256],"T":4}}]},)"
      R"("tile":{"tT":4,"tS1":8,"tS2":64}})");
  EXPECT_NE(out.find(R"("ok":false)"), std::string::npos);
  EXPECT_NE(out.find("SL405"), std::string::npos);
}

TEST_F(ServicePipelineTest, MalformedPipelineReportsSL6xx) {
  ServiceCore core{ServiceOptions{}};
  const std::string cyclic = core.handle(
      R"({"v":1,"id":"c","kind":"pipeline",)"
      R"("pipeline":{"pipeline_version":1,"stages":[)"
      R"({"id":"a","stencil":"Jacobi2D","problem":{"S":[256,256],"T":4},)"
      R"("after":["b"]},)"
      R"({"id":"b","stencil":"Jacobi2D","problem":{"S":[256,256],"T":4},)"
      R"("after":["a"]}]}})");
  EXPECT_NE(cyclic.find(R"("ok":false)"), std::string::npos);
  EXPECT_NE(cyclic.find("SL604"), std::string::npos);

  const std::string missing = core.handle(
      R"({"v":1,"id":"m","kind":"pipeline"})");
  EXPECT_NE(missing.find(R"("ok":false)"), std::string::npos);
  EXPECT_NE(missing.find("SL404"), std::string::npos);
}

// Satellite pin: the stats request reports per-kind counters,
// including the pipeline kind.
TEST_F(ServicePipelineTest, StatsRequestReportsPerKindCounters) {
  ServiceCore core(ServiceOptions{}.with_store_dir(store_dir_.string()));
  (void)core.handle(kPipelineReq);
  (void)core.handle(
      R"({"v":1,"id":"l1","kind":"lint","stencil":"Heat2D",)"
      R"("tile":{"tT":2,"tS1":4,"tS2":32}})");
  const std::string out =
      core.handle(R"({"v":1,"id":"s1","kind":"stats"})");
  EXPECT_NE(out.find(R"("ok":true)"), std::string::npos);
  const auto doc = json::parse(out);
  ASSERT_TRUE(doc && doc->is_object()) << out;
  const json::Value* kinds = doc->find("result")->find("kinds");
  ASSERT_NE(kinds, nullptr);
  EXPECT_EQ(kinds->find("pipeline")->as_int(), 1);
  EXPECT_EQ(kinds->find("lint")->as_int(), 1);
}

// The corpus pin: both shipped example pipelines parse cleanly and
// plan end to end through the service (exercised under tiny caps).
TEST_F(ServicePipelineTest, ExamplePipelinesServeFeasiblePlans) {
  const fs::path root = fs::path(REPRO_SOURCE_DIR) / "examples" / "pipelines";
  const struct {
    const char* file;
    std::size_t total;
    std::size_t distinct;
  } cases[] = {{"vcycle3.json", 11, 8}, {"substep2.json", 2, 2}};

  ServiceCore core(ServiceOptions{}.with_store_dir(store_dir_.string()));
  for (const auto& c : cases) {
    std::ifstream in(root / c.file);
    ASSERT_TRUE(in.is_open()) << (root / c.file);
    std::stringstream ss;
    ss << in.rdbuf();

    json::Value req = json::Value::object();
    req.set("v", kProtocolVersion);
    req.set("id", std::string(c.file));
    req.set("kind", std::string("pipeline"));
    const auto pl = json::parse(ss.str());
    ASSERT_TRUE(pl) << c.file;
    req.set("pipeline", *pl);
    const auto caps =
        json::parse(R"({"tT_max":8,"tS1_max":12,"tS2_max":192})");
    req.set("enum", *caps);

    const std::string out = core.handle(req.dump());
    EXPECT_NE(out.find(R"("ok":true)"), std::string::npos) << out;
    const auto doc = json::parse(out);
    ASSERT_TRUE(doc && doc->is_object()) << out;
    const json::Value* r = doc->find("result");
    ASSERT_NE(r, nullptr);
    EXPECT_TRUE(r->find("feasible")->as_bool()) << c.file;
    EXPECT_EQ(r->find("total_stages")->as_int(),
              static_cast<std::int64_t>(c.total));
    EXPECT_EQ(r->find("distinct_tasks")->as_int(),
              static_cast<std::int64_t>(c.distinct));
  }
}

}  // namespace
}  // namespace repro::service
