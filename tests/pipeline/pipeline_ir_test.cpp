#include "pipeline/pipeline.hpp"

#include <gtest/gtest.h>

#include <string>

namespace repro::pipeline {
namespace {

using analysis::Code;

constexpr const char* kVcycle = R"({
  "pipeline_version": 1,
  "name": "mini_vcycle",
  "stages": [
    {"id": "smooth", "stencil": "Jacobi2D",
     "problem": {"S": [256, 256], "T": 4}, "repeat": 2, "level": 0},
    {"id": "restrict", "stencil": "Gradient2D",
     "problem": {"S": [128, 128], "T": 2}, "after": ["smooth"],
     "level": 1},
    {"id": "solve", "stencil": "Jacobi2D",
     "problem": {"S": [128, 128], "T": 8}, "after": ["restrict"],
     "level": 1,
     "variant": {"unroll": 2, "staging": "register"}}
  ]
})";

std::optional<Pipeline> parse_ok(const std::string& text) {
  analysis::DiagnosticEngine diags;
  auto p = parse_pipeline_text(text, diags);
  EXPECT_TRUE(diags.empty()) << text;
  return p;
}

// Every failure test: parse must return nullopt AND emit the exact
// SL6xx code the header documents.
void expect_code(const std::string& text, Code code) {
  analysis::DiagnosticEngine diags;
  const auto p = parse_pipeline_text(text, diags);
  EXPECT_FALSE(p.has_value()) << text;
  EXPECT_TRUE(diags.has_code(code)) << text;
}

TEST(PipelineIr, ParsesVcycleAndResolvesStages) {
  const auto p = parse_ok(kVcycle);
  ASSERT_TRUE(p);
  EXPECT_EQ(p->name, "mini_vcycle");
  ASSERT_EQ(p->stages.size(), 3u);
  EXPECT_EQ(p->stages[0].id, "smooth");
  EXPECT_EQ(p->stages[0].stencil_name, "Jacobi2D");
  EXPECT_EQ(p->stages[0].repeat, 2);
  EXPECT_EQ(p->stages[0].problem.dim, 2);
  EXPECT_EQ(p->stages[0].problem.S[0], 256);
  EXPECT_FALSE(p->stages[0].variant.has_value());
  ASSERT_EQ(p->stages[1].after.size(), 1u);
  EXPECT_EQ(p->stages[1].after[0], "smooth");
  ASSERT_TRUE(p->stages[2].variant.has_value());
  EXPECT_EQ(p->stages[2].variant->unroll, 2);
  EXPECT_EQ(p->stages[2].variant->staging, stencil::Staging::kRegister);
  // The stencil definition is resolved from the catalogue at parse
  // time: downstream consumers never re-look anything up.
  EXPECT_EQ(p->stages[0].def.dim, 2);
}

TEST(PipelineIr, ToJsonRoundTripsByteStably) {
  const auto p = parse_ok(kVcycle);
  ASSERT_TRUE(p);
  const std::string once = p->to_json().dump();
  const auto again = parse_ok(once);
  ASSERT_TRUE(again);
  EXPECT_EQ(again->to_json().dump(), once);
}

TEST(PipelineIr, TwoSpellingsNormalizeToIdenticalBytes) {
  // Same DAG: defaults spelled out + shuffled member order vs the
  // terse spelling. The normalized form is what the service keys on.
  const auto terse = parse_ok(
      R"({"pipeline_version":1,"stages":[
           {"id":"a","stencil":"Heat2D","problem":{"S":[64,64],"T":2}}]})");
  const auto verbose = parse_ok(
      R"({"stages":[
           {"problem":{"T":2,"S":[64,64]},"repeat":1,"after":[],
            "stencil":"Heat2D","id":"a"}],
          "name":"","pipeline_version":1})");
  ASSERT_TRUE(terse);
  ASSERT_TRUE(verbose);
  EXPECT_EQ(terse->to_json().dump(), verbose->to_json().dump());
}

TEST(PipelineIr, InlineDslTextStageParses) {
  const auto p = parse_ok(
      R"({"pipeline_version":1,"stages":[
           {"id":"custom",
            "text":"stencil J {\n dim 1\n tap (0) 0.5\n tap (1) 0.25\n tap (-1) 0.25\n}",
            "problem":{"S":[1024],"T":4}}]})");
  ASSERT_TRUE(p);
  EXPECT_TRUE(p->stages[0].stencil_name.empty());
  EXPECT_FALSE(p->stages[0].stencil_text.empty());
  EXPECT_EQ(p->stages[0].def.dim, 1);
}

TEST(PipelineIr, TopoOrderFollowsEdgesThenDeclarationIndex) {
  // b has no predecessor but is declared after a; with no edges
  // between them the order is declaration order. c waits for both.
  const auto p = parse_ok(
      R"({"pipeline_version":1,"stages":[
           {"id":"a","stencil":"Jacobi1D","problem":{"S":[512],"T":2}},
           {"id":"b","stencil":"Jacobi1D","problem":{"S":[256],"T":2}},
           {"id":"c","stencil":"Jacobi1D","problem":{"S":[128],"T":2},
            "after":["b","a"]}]})");
  ASSERT_TRUE(p);
  const auto order = topo_order(*p);
  ASSERT_TRUE(order);
  EXPECT_EQ(*order, (std::vector<std::size_t>{0, 1, 2}));

  // An edge inverting declaration order is honored.
  const auto q = parse_ok(
      R"({"pipeline_version":1,"stages":[
           {"id":"a","stencil":"Jacobi1D","problem":{"S":[512],"T":2},
            "after":["b"]},
           {"id":"b","stencil":"Jacobi1D","problem":{"S":[256],"T":2}}]})");
  ASSERT_TRUE(q);
  const auto order2 = topo_order(*q);
  ASSERT_TRUE(order2);
  EXPECT_EQ(*order2, (std::vector<std::size_t>{1, 0}));
}

TEST(PipelineIr, MalformedDocumentsAreSL601) {
  // Not an object.
  expect_code(R"([1,2,3])", Code::kPipeMalformed);
  // Unparseable text.
  expect_code("{nope", Code::kPipeMalformed);
  // Missing/wrong version.
  expect_code(R"({"stages":[]})", Code::kPipeMalformed);
  expect_code(R"({"pipeline_version":2,"stages":[]})", Code::kPipeMalformed);
  // Unknown top-level and stage-level fields.
  expect_code(
      R"({"pipeline_version":1,"bogus":1,"stages":[
           {"id":"a","stencil":"Heat2D","problem":{"S":[64,64],"T":2}}]})",
      Code::kPipeMalformed);
  expect_code(
      R"({"pipeline_version":1,"stages":[
           {"id":"a","stencil":"Heat2D","problem":{"S":[64,64],"T":2},
            "bogus":1}]})",
      Code::kPipeMalformed);
  // Empty stages, bad repeat, bad problem.
  expect_code(R"({"pipeline_version":1,"stages":[]})", Code::kPipeMalformed);
  expect_code(
      R"({"pipeline_version":1,"stages":[
           {"id":"a","stencil":"Heat2D","problem":{"S":[64,64],"T":2},
            "repeat":0}]})",
      Code::kPipeMalformed);
  expect_code(
      R"({"pipeline_version":1,"stages":[
           {"id":"a","stencil":"Heat2D","problem":{"S":[64,-4],"T":2}}]})",
      Code::kPipeMalformed);
}

TEST(PipelineIr, UnknownCatalogueStencilIsSL602) {
  expect_code(
      R"({"pipeline_version":1,"stages":[
           {"id":"a","stencil":"NoSuchStencil",
            "problem":{"S":[64,64],"T":2}}]})",
      Code::kPipeUnknownStencil);
}

TEST(PipelineIr, DuplicateIdAndUndeclaredEdgeAreSL603) {
  expect_code(
      R"({"pipeline_version":1,"stages":[
           {"id":"a","stencil":"Heat2D","problem":{"S":[64,64],"T":2}},
           {"id":"a","stencil":"Heat2D","problem":{"S":[64,64],"T":2}}]})",
      Code::kPipeUnknownStage);
  expect_code(
      R"({"pipeline_version":1,"stages":[
           {"id":"a","stencil":"Heat2D","problem":{"S":[64,64],"T":2},
            "after":["ghost"]}]})",
      Code::kPipeUnknownStage);
}

TEST(PipelineIr, DependencyCycleIsSL604) {
  expect_code(
      R"({"pipeline_version":1,"stages":[
           {"id":"a","stencil":"Heat2D","problem":{"S":[64,64],"T":2},
            "after":["b"]},
           {"id":"b","stencil":"Heat2D","problem":{"S":[64,64],"T":2},
            "after":["a"]}]})",
      Code::kPipeCycle);
}

TEST(PipelineIr, DimAndLevelMismatchesAreSL605) {
  // 1D problem against a 2D stencil.
  expect_code(
      R"({"pipeline_version":1,"stages":[
           {"id":"a","stencil":"Heat2D","problem":{"S":[64],"T":2}}]})",
      Code::kPipeLevelMismatch);
  // Two stages on level 0 disagreeing on spatial extents.
  expect_code(
      R"({"pipeline_version":1,"stages":[
           {"id":"a","stencil":"Heat2D","problem":{"S":[64,64],"T":2},
            "level":0},
           {"id":"b","stencil":"Heat2D","problem":{"S":[32,32],"T":2},
            "level":0}]})",
      Code::kPipeLevelMismatch);
}

}  // namespace
}  // namespace repro::pipeline
