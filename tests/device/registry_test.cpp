// DeviceRegistry: the open lookup surface behind every tool and the
// service. Pins the pre-registered paper devices, the byte-stable
// JSON round-trip (dump -> load -> re-dump), and the structured
// diagnostics: SL522 unknown name (with nearest-name hint), SL523
// duplicate registration, SL524 malformed JSON.
#include "device/registry.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "cpusim/device.hpp"
#include "gpusim/device.hpp"

namespace repro::device {
namespace {

using analysis::Code;
using analysis::DiagnosticEngine;

TEST(Registry, PreRegisteredPaperDevices) {
  DeviceRegistry& reg = registry();
  const std::vector<std::string> names = reg.names();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "GTX 980");
  EXPECT_EQ(names[1], "Titan X");
  EXPECT_EQ(names[2], "Xeon E5-2690 v4");
  EXPECT_EQ(names[3], "Ryzen 7 3700X");

  ASSERT_NE(reg.find("GTX 980"), nullptr);
  EXPECT_TRUE(reg.find("GTX 980")->is_gpu());
  ASSERT_NE(reg.find("Xeon E5-2690 v4"), nullptr);
  EXPECT_TRUE(reg.find("Xeon E5-2690 v4")->is_cpu());
  EXPECT_EQ(reg.find("Xeon E5-2690 v4")->cpu().cores,
            cpusim::xeon_e5_2690v4().cores);
}

TEST(Registry, DumpLoadRedumpIsByteIdentical) {
  const std::string dumped = registry().dump();
  DeviceRegistry fresh;
  DiagnosticEngine diags;
  ASSERT_TRUE(fresh.load(dumped, &diags))
      << analysis::render_human(diags.diagnostics(), "<registry>");
  EXPECT_EQ(fresh.size(), registry().size());
  EXPECT_EQ(fresh.dump(), dumped);
}

TEST(Registry, DescriptorJsonRoundTripsBothKinds) {
  for (const char* name : {"Titan X", "Ryzen 7 3700X"}) {
    const Descriptor* d = registry().find(name);
    ASSERT_NE(d, nullptr) << name;
    const std::string once = d->to_json().dump();
    const auto back = Descriptor::from_json(d->to_json(), nullptr);
    ASSERT_TRUE(back.has_value()) << name;
    EXPECT_EQ(back->kind(), d->kind());
    EXPECT_EQ(back->to_json().dump(), once) << name;
  }
}

TEST(Registry, UnknownNameIsSL522WithNearestHint) {
  DiagnosticEngine diags;
  EXPECT_EQ(registry().resolve("GTX 908", &diags), nullptr);
  ASSERT_TRUE(diags.has_code(Code::kAuditUnknownDevice));
  ASSERT_EQ(diags.diagnostics().size(), 1u);
  const analysis::Diagnostic& d = diags.diagnostics()[0];
  // The message lists what IS registered; the hint names the nearest.
  EXPECT_NE(d.message.find("GTX 908"), std::string::npos);
  EXPECT_NE(d.message.find("Xeon E5-2690 v4"), std::string::npos);
  EXPECT_NE(d.hint.find("GTX 980"), std::string::npos);
}

TEST(Registry, NearestIsCaseInsensitiveAndBounded) {
  const std::vector<std::string> near = registry().nearest("titan x");
  ASSERT_FALSE(near.empty());
  EXPECT_EQ(near[0], "Titan X");
  // A name nothing like any registered device suggests nothing.
  EXPECT_TRUE(registry().nearest("completely-unrelated-device-zzz").empty());
}

TEST(Registry, DuplicateRegistrationIsSL523) {
  DeviceRegistry reg;
  EXPECT_TRUE(reg.add(Descriptor(gpusim::gtx980()), nullptr));
  DiagnosticEngine diags;
  EXPECT_FALSE(reg.add(Descriptor(gpusim::gtx980()), &diags));
  EXPECT_TRUE(diags.has_code(Code::kAuditDuplicateDevice));
  EXPECT_EQ(reg.size(), 1u);
}

TEST(Registry, MalformedJsonIsSL524) {
  DeviceRegistry reg;
  {
    DiagnosticEngine diags;
    EXPECT_FALSE(reg.load("{not json", &diags));
    EXPECT_TRUE(diags.has_code(Code::kAuditRegistryJson));
  }
  {
    // Well-formed JSON, wrong shape.
    DiagnosticEngine diags;
    EXPECT_FALSE(reg.load(R"({"devices": [{"kind": "abacus"}]})", &diags));
    EXPECT_TRUE(diags.has_code(Code::kAuditRegistryJson));
  }
  EXPECT_EQ(reg.size(), 0u);
}

TEST(Registry, LoadExtendsAndRejectsCrossFileDuplicates) {
  DeviceRegistry reg;
  ASSERT_TRUE(reg.add(Descriptor(cpusim::ryzen_3700x()), nullptr));
  // A registry file that collides with an already-registered name
  // fails with SL523 but still registers the non-colliding entries.
  DeviceRegistry source;
  ASSERT_TRUE(source.add(Descriptor(gpusim::titan_x()), nullptr));
  ASSERT_TRUE(source.add(Descriptor(cpusim::ryzen_3700x()), nullptr));
  DiagnosticEngine diags;
  EXPECT_FALSE(reg.load(source.dump(), &diags));
  EXPECT_TRUE(diags.has_code(Code::kAuditDuplicateDevice));
  EXPECT_NE(reg.find("Titan X"), nullptr);
  EXPECT_EQ(reg.size(), 2u);
}

}  // namespace
}  // namespace repro::device
